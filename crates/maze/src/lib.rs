#![warn(missing_docs)]

//! Lee-style maze routing baseline.
//!
//! Section 3 of the paper claims the Track Intersection Graph router
//! "results in faster completion of the interconnections on the average
//! when compared to maze type algorithms". This crate supplies the
//! comparator: a classic Lee router (Lee, "An algorithm for path
//! connections and its applications", 1961) expanding a wave over the
//! same two-plane grid model the Level B router uses, plus an A*
//! variant.
//!
//! The unit of comparison is **expanded nodes**: a maze wave touches
//! `O(area)` grid cells per connection, while the TIG search touches
//! `O(tracks)` vertices.
//!
//! # Example
//!
//! ```
//! use ocr_geom::{Interval, Point, Rect};
//! use ocr_grid::{GridModel, TrackSet};
//! use ocr_maze::{route_maze, MazeOptions};
//!
//! let mut grid = GridModel::new(
//!     Rect::new(0, 0, 100, 100),
//!     TrackSet::from_pitch(Interval::new(0, 100), 10),
//!     TrackSet::from_pitch(Interval::new(0, 100), 10),
//! );
//! let path = route_maze(&mut grid, 1, Point::new(0, 0), Point::new(100, 100),
//!                       MazeOptions::default())?;
//! assert_eq!(path.route.wire_length(), 200);
//! # Ok::<(), ocr_maze::MazeError>(())
//! ```

pub mod mikami;

pub use mikami::route_mikami;

use ocr_geom::{Coord, Dir, Point};
use ocr_grid::{CellState, GridModel};
use ocr_netlist::{NetRoute, RouteSeg, Via};
use std::collections::BinaryHeap;
use std::fmt;

/// Options for the maze router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MazeOptions {
    /// Extra cost charged for a plane change (a via).
    pub via_cost: Coord,
    /// Use the A* lower-bound (remaining Manhattan distance) to focus
    /// the wave. `false` reproduces the undirected Lee expansion.
    pub astar: bool,
}

impl Default for MazeOptions {
    fn default() -> Self {
        MazeOptions {
            via_cost: 5,
            astar: false,
        }
    }
}

/// Errors from the maze router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MazeError {
    /// A terminal does not lie on the grid.
    OffGrid(Point),
    /// A terminal's grid cell is blocked on both planes.
    TerminalBlocked(Point),
    /// The wave exhausted the grid without reaching the target.
    NoPath,
}

impl fmt::Display for MazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MazeError::OffGrid(p) => write!(f, "terminal {p} is off the routing grid"),
            MazeError::TerminalBlocked(p) => write!(f, "terminal {p} is blocked on both planes"),
            MazeError::NoPath => write!(f, "no path exists between the terminals"),
        }
    }
}

impl std::error::Error for MazeError {}

/// A found maze path.
#[derive(Clone, Debug)]
pub struct MazePath {
    /// The physical route (wires on M3/M4, corner vias).
    pub route: NetRoute,
    /// Total cost (wire length plus via penalties).
    pub cost: Coord,
    /// Number of search nodes expanded — the performance measure the
    /// paper's comparison is about.
    pub expanded: usize,
    /// Grid nodes of the path as `(i, j, plane)`.
    pub nodes: Vec<(usize, usize, Dir)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    priority: Coord,
    cost: Coord,
    node: (usize, usize, usize),
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .priority
            .cmp(&self.priority)
            .then(other.cost.cmp(&self.cost))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes one two-terminal connection with a Lee/Dijkstra wave over the
/// grid's two planes, marking the found path as used by `net`.
///
/// Horizontal moves run on the horizontal plane (metal3), vertical moves
/// on the vertical plane (metal4); plane changes cost
/// [`MazeOptions::via_cost`]. Cells already used by `net` itself are
/// passable (reuse of own wiring).
///
/// # Errors
///
/// See [`MazeError`].
pub fn route_maze(
    grid: &mut GridModel,
    net: u32,
    from: Point,
    to: Point,
    opts: MazeOptions,
) -> Result<MazePath, MazeError> {
    let src = grid.snap(from).ok_or(MazeError::OffGrid(from))?;
    let dst = grid.snap(to).ok_or(MazeError::OffGrid(to))?;
    let (nv, nh) = (grid.nv(), grid.nh());
    let idx = |i: usize, j: usize, p: usize| (j * nv + i) * 2 + p;
    let passable = |g: &GridModel, i: usize, j: usize, p: usize| match g.state(
        if p == 0 {
            Dir::Horizontal
        } else {
            Dir::Vertical
        },
        i,
        j,
    ) {
        CellState::Free => true,
        CellState::Used(n) => n == net,
        CellState::Blocked => false,
    };

    let mut dist: Vec<Coord> = vec![Coord::MAX; nv * nh * 2];
    let mut prev: Vec<u32> = vec![u32::MAX; nv * nh * 2];
    let mut heap = BinaryHeap::new();
    let h = |i: usize, j: usize| -> Coord {
        if opts.astar {
            grid.distance((i, j), dst)
        } else {
            0
        }
    };
    let mut start_ok = false;
    for p in 0..2 {
        if passable(grid, src.0, src.1, p) {
            dist[idx(src.0, src.1, p)] = 0;
            heap.push(QueueEntry {
                priority: h(src.0, src.1),
                cost: 0,
                node: (src.0, src.1, p),
            });
            start_ok = true;
        }
    }
    if !start_ok {
        return Err(MazeError::TerminalBlocked(from));
    }
    if !(0..2).any(|p| passable(grid, dst.0, dst.1, p)) {
        return Err(MazeError::TerminalBlocked(to));
    }

    let mut expanded = 0usize;
    let mut goal: Option<(usize, usize, usize)> = None;
    while let Some(QueueEntry { cost, node, .. }) = heap.pop() {
        let (i, j, p) = node;
        if cost > dist[idx(i, j, p)] {
            continue;
        }
        expanded += 1;
        if (i, j) == dst {
            goal = Some(node);
            break;
        }
        // Neighbour moves along the plane's direction.
        let push = |grid: &GridModel,
                    heap: &mut BinaryHeap<QueueEntry>,
                    dist: &mut Vec<Coord>,
                    prev: &mut Vec<u32>,
                    ni: usize,
                    nj: usize,
                    np: usize,
                    step: Coord| {
            if !passable(grid, ni, nj, np) {
                return;
            }
            let nd = cost + step;
            let k = idx(ni, nj, np);
            if nd < dist[k] {
                dist[k] = nd;
                prev[k] = idx(i, j, p) as u32;
                heap.push(QueueEntry {
                    priority: nd + h(ni, nj),
                    cost: nd,
                    node: (ni, nj, np),
                });
            }
        };
        if p == 0 {
            // Horizontal plane: move along x.
            if i > 0 {
                let step = grid.v_tracks().offset(i) - grid.v_tracks().offset(i - 1);
                push(grid, &mut heap, &mut dist, &mut prev, i - 1, j, 0, step);
            }
            if i + 1 < nv {
                let step = grid.v_tracks().offset(i + 1) - grid.v_tracks().offset(i);
                push(grid, &mut heap, &mut dist, &mut prev, i + 1, j, 0, step);
            }
        } else {
            // Vertical plane: move along y.
            if j > 0 {
                let step = grid.h_tracks().offset(j) - grid.h_tracks().offset(j - 1);
                push(grid, &mut heap, &mut dist, &mut prev, i, j - 1, 1, step);
            }
            if j + 1 < nh {
                let step = grid.h_tracks().offset(j + 1) - grid.h_tracks().offset(j);
                push(grid, &mut heap, &mut dist, &mut prev, i, j + 1, 1, step);
            }
        }
        // Plane change (via).
        push(
            grid,
            &mut heap,
            &mut dist,
            &mut prev,
            i,
            j,
            1 - p,
            opts.via_cost,
        );
    }

    let goal = goal.ok_or(MazeError::NoPath)?;
    // Reconstruct.
    let mut nodes_rev: Vec<(usize, usize, usize)> = Vec::new();
    let mut cur = idx(goal.0, goal.1, goal.2);
    loop {
        let p = cur % 2;
        let rest = cur / 2;
        nodes_rev.push((rest % nv, rest / nv, p));
        let pr = prev[cur];
        if pr == u32::MAX {
            break;
        }
        cur = pr as usize;
    }
    nodes_rev.reverse();
    let nodes: Vec<(usize, usize, Dir)> = nodes_rev
        .iter()
        .map(|&(i, j, p)| {
            (
                i,
                j,
                if p == 0 {
                    Dir::Horizontal
                } else {
                    Dir::Vertical
                },
            )
        })
        .collect();

    let route = path_to_route(grid, &nodes);
    occupy_path(grid, net, &nodes);
    Ok(MazePath {
        route,
        cost: dist[idx(goal.0, goal.1, goal.2)],
        expanded,
        nodes,
    })
}

/// A soft path: the cheapest route when other nets' wiring is passable
/// at a penalty, plus the nets that wiring belongs to.
///
/// Used by rip-up-and-reroute: when a net is hard-blocked, the soft
/// path names the cheapest set of victim nets to rip.
#[derive(Clone, Debug)]
pub struct SoftPath {
    /// Grid nodes of the path as `(i, j, plane)`.
    pub nodes: Vec<(usize, usize, Dir)>,
    /// Total cost including blocker penalties.
    pub cost: Coord,
    /// Distinct ids of other nets whose wiring the path crosses, in
    /// first-encounter order.
    pub blockers: Vec<u32>,
}

/// Finds the cheapest path from `from` to `to` treating cells used by
/// *other* nets as passable at `block_penalty` per cell (obstacles stay
/// impassable). Does **not** modify the grid.
///
/// # Errors
///
/// [`MazeError::OffGrid`] for off-grid terminals; [`MazeError::NoPath`]
/// when even ripping every net would not connect the terminals
/// (obstacles seal them apart).
pub fn find_soft_path(
    grid: &GridModel,
    net: u32,
    from: Point,
    to: Point,
    opts: MazeOptions,
    block_penalty: Coord,
) -> Result<SoftPath, MazeError> {
    find_soft_path_filtered(grid, net, from, to, opts, block_penalty, |_, _| true)
}

/// Like [`find_soft_path`], but only cells for which
/// `rippable(i, j)` returns `true` may be crossed at a penalty; other
/// nets' cells failing the filter stay impassable.
///
/// Rip-up-and-reroute uses this to exclude cells that ripping cannot
/// free (terminal reservations), so every named blocker is genuinely
/// removable.
///
/// # Errors
///
/// Same as [`find_soft_path`].
pub fn find_soft_path_filtered(
    grid: &GridModel,
    net: u32,
    from: Point,
    to: Point,
    opts: MazeOptions,
    block_penalty: Coord,
    rippable: impl Fn(usize, usize) -> bool,
) -> Result<SoftPath, MazeError> {
    let src = grid.snap(from).ok_or(MazeError::OffGrid(from))?;
    let dst = grid.snap(to).ok_or(MazeError::OffGrid(to))?;
    let (nv, nh) = (grid.nv(), grid.nh());
    let idx = |i: usize, j: usize, p: usize| (j * nv + i) * 2 + p;
    let dir_of = |p: usize| {
        if p == 0 {
            Dir::Horizontal
        } else {
            Dir::Vertical
        }
    };
    // Entry cost of a cell: None = impassable, Some(extra) otherwise.
    let entry = |i: usize, j: usize, p: usize| -> Option<Coord> {
        match grid.state(dir_of(p), i, j) {
            CellState::Free => Some(0),
            CellState::Used(n) if n == net => Some(0),
            CellState::Used(_) if rippable(i, j) => Some(block_penalty),
            CellState::Used(_) => None,
            CellState::Blocked => None,
        }
    };

    let mut dist: Vec<Coord> = vec![Coord::MAX; nv * nh * 2];
    let mut prev: Vec<u32> = vec![u32::MAX; nv * nh * 2];
    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    for p in 0..2 {
        if let Some(extra) = entry(src.0, src.1, p) {
            let d = extra;
            if d < dist[idx(src.0, src.1, p)] {
                dist[idx(src.0, src.1, p)] = d;
                heap.push(QueueEntry {
                    priority: d,
                    cost: d,
                    node: (src.0, src.1, p),
                });
            }
        }
    }
    if heap.is_empty() {
        return Err(MazeError::TerminalBlocked(from));
    }

    let mut goal: Option<(usize, usize, usize)> = None;
    while let Some(QueueEntry { cost, node, .. }) = heap.pop() {
        let (i, j, p) = node;
        if cost > dist[idx(i, j, p)] {
            continue;
        }
        if (i, j) == dst {
            goal = Some(node);
            break;
        }
        let mut relax = |ni: usize, nj: usize, np: usize, step: Coord| {
            let Some(extra) = entry(ni, nj, np) else {
                return;
            };
            let nd = cost + step + extra;
            let k = idx(ni, nj, np);
            if nd < dist[k] {
                dist[k] = nd;
                prev[k] = idx(i, j, p) as u32;
                heap.push(QueueEntry {
                    priority: nd,
                    cost: nd,
                    node: (ni, nj, np),
                });
            }
        };
        if p == 0 {
            if i > 0 {
                relax(
                    i - 1,
                    j,
                    0,
                    grid.v_tracks().offset(i) - grid.v_tracks().offset(i - 1),
                );
            }
            if i + 1 < nv {
                relax(
                    i + 1,
                    j,
                    0,
                    grid.v_tracks().offset(i + 1) - grid.v_tracks().offset(i),
                );
            }
        } else {
            if j > 0 {
                relax(
                    i,
                    j - 1,
                    1,
                    grid.h_tracks().offset(j) - grid.h_tracks().offset(j - 1),
                );
            }
            if j + 1 < nh {
                relax(
                    i,
                    j + 1,
                    1,
                    grid.h_tracks().offset(j + 1) - grid.h_tracks().offset(j),
                );
            }
        }
        relax(i, j, 1 - p, opts.via_cost);
    }

    let goal = goal.ok_or(MazeError::NoPath)?;
    let mut nodes_rev = Vec::new();
    let mut cur = idx(goal.0, goal.1, goal.2);
    loop {
        let p = cur % 2;
        let rest = cur / 2;
        nodes_rev.push((rest % nv, rest / nv, dir_of(p)));
        let pr = prev[cur];
        if pr == u32::MAX {
            break;
        }
        cur = pr as usize;
    }
    nodes_rev.reverse();
    let mut blockers: Vec<u32> = Vec::new();
    for &(i, j, d) in &nodes_rev {
        if let CellState::Used(n) = grid.state(d, i, j) {
            if n != net && !blockers.contains(&n) {
                blockers.push(n);
            }
        }
    }
    Ok(SoftPath {
        cost: dist[idx(goal.0, goal.1, goal.2)],
        nodes: nodes_rev,
        blockers,
    })
}

/// Converts a node path into wire segments and corner vias.
pub(crate) fn path_to_route(grid: &GridModel, nodes: &[(usize, usize, Dir)]) -> NetRoute {
    let mut route = NetRoute::new();
    if nodes.is_empty() {
        return route;
    }
    let layer_of = |d: Dir| match d {
        Dir::Horizontal => ocr_geom::Layer::Metal3,
        Dir::Vertical => ocr_geom::Layer::Metal4,
    };
    let mut run_start = 0usize;
    for k in 1..=nodes.len() {
        let end_run = k == nodes.len() || nodes[k].2 != nodes[run_start].2;
        if !end_run {
            continue;
        }
        let (i0, j0, d) = nodes[run_start];
        let (i1, j1, _) = nodes[k - 1];
        let a = grid.point(i0, j0);
        let b = grid.point(i1, j1);
        if a != b {
            route.segs.push(RouteSeg::new(a, b, layer_of(d)));
        }
        if k < nodes.len() {
            // Plane change: via at the junction point.
            let at = grid.point(nodes[k].0, nodes[k].1);
            route.vias.push(Via::new(
                at,
                ocr_geom::Layer::Metal3,
                ocr_geom::Layer::Metal4,
            ));
            run_start = k;
        }
    }
    route
}

/// Marks the path's cells as used by `net` on their respective planes.
pub(crate) fn occupy_path(grid: &mut GridModel, net: u32, nodes: &[(usize, usize, Dir)]) {
    for &(i, j, d) in nodes {
        grid.set_state(d, i, j, CellState::Used(net));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocr_geom::{Interval, Rect};
    use ocr_grid::TrackSet;

    fn grid(n: Coord, pitch: Coord) -> GridModel {
        GridModel::new(
            Rect::new(0, 0, n, n),
            TrackSet::from_pitch(Interval::new(0, n), pitch),
            TrackSet::from_pitch(Interval::new(0, n), pitch),
        )
    }

    #[test]
    fn straight_line_costs_its_length() {
        let mut g = grid(100, 10);
        let p = route_maze(
            &mut g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .expect("routes");
        assert_eq!(p.route.wire_length(), 100);
        assert_eq!(p.route.vias.len(), 0);
    }

    #[test]
    fn l_path_has_one_via() {
        let mut g = grid(100, 10);
        let p = route_maze(
            &mut g,
            1,
            Point::new(0, 0),
            Point::new(100, 100),
            MazeOptions::default(),
        )
        .expect("routes");
        assert_eq!(p.route.wire_length(), 200);
        assert_eq!(p.route.vias.len(), 1);
    }

    #[test]
    fn detours_around_obstacle() {
        let mut g = grid(100, 10);
        // Wall across the middle on both planes, with a hole at the top.
        for dir in [Dir::Horizontal, Dir::Vertical] {
            g.block_rect(&Rect::new(45, -5, 55, 85), dir);
        }
        let p = route_maze(
            &mut g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .expect("routes");
        assert!(p.route.wire_length() > 100, "must detour");
        // Path must stay clear of blocked cells — re-route of same net
        // over its own path is fine, so just check wire length grew.
    }

    #[test]
    fn no_path_is_reported() {
        let mut g = grid(100, 10);
        for dir in [Dir::Horizontal, Dir::Vertical] {
            g.block_rect(&Rect::new(45, -5, 55, 105), dir);
        }
        let err = route_maze(
            &mut g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, MazeError::NoPath);
    }

    #[test]
    fn astar_expands_no_more_than_dijkstra() {
        let mut g1 = grid(200, 10);
        let mut g2 = grid(200, 10);
        let lee = route_maze(
            &mut g1,
            1,
            Point::new(0, 0),
            Point::new(200, 200),
            MazeOptions::default(),
        )
        .expect("routes");
        let astar = route_maze(
            &mut g2,
            1,
            Point::new(0, 0),
            Point::new(200, 200),
            MazeOptions {
                astar: true,
                ..MazeOptions::default()
            },
        )
        .expect("routes");
        assert_eq!(lee.route.wire_length(), astar.route.wire_length());
        assert!(astar.expanded <= lee.expanded);
    }

    #[test]
    fn second_net_avoids_first() {
        let mut g = grid(100, 10);
        let first = route_maze(
            &mut g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .expect("net 1");
        assert_eq!(first.route.wire_length(), 100);
        // Net 2 wants the same horizontal track: it must switch tracks.
        let second = route_maze(
            &mut g,
            2,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        );
        match second {
            Ok(p) => assert!(p.route.wire_length() > 100 || !p.route.vias.is_empty()),
            Err(e) => panic!("net 2 should still route: {e}"),
        }
    }

    #[test]
    fn own_wiring_is_reusable() {
        let mut g = grid(100, 10);
        route_maze(
            &mut g,
            7,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .expect("first pass");
        // Same net again across its own wire: allowed.
        let again = route_maze(
            &mut g,
            7,
            Point::new(0, 50),
            Point::new(50, 50),
            MazeOptions::default(),
        )
        .expect("reuse");
        assert_eq!(again.route.wire_length(), 50);
    }

    #[test]
    fn soft_path_names_the_blockers() {
        let mut g = grid(100, 10);
        // Net 5 owns three full columns on both planes — a wall of
        // wiring no other net can cross without paying its penalty.
        for i in 4..=6 {
            for j in 0..=10 {
                g.set_state(Dir::Horizontal, i, j, ocr_grid::CellState::Used(5));
                g.set_state(Dir::Vertical, i, j, ocr_grid::CellState::Used(5));
            }
        }
        // Hard search fails…
        let hard = route_maze(
            &mut g.clone(),
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        );
        assert_eq!(hard.unwrap_err(), MazeError::NoPath);
        // …but the soft search crosses net 5 and names it.
        let soft = find_soft_path(
            &g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
            10_000,
        )
        .expect("soft path");
        assert_eq!(soft.blockers, vec![5]);
        assert!(soft.cost >= 10_000);
    }

    #[test]
    fn soft_path_prefers_free_routes_over_ripping() {
        let mut g = grid(100, 10);
        // Net 5 occupies the straight row, but a free detour exists.
        g.occupy_run(Dir::Horizontal, 5, 0, 10, 5);
        let soft = find_soft_path(
            &g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
            10_000,
        )
        .expect("soft path");
        assert!(soft.blockers.is_empty(), "should detour instead of ripping");
    }

    #[test]
    fn soft_path_still_fails_through_obstacles() {
        let mut g = grid(100, 10);
        for dir in [Dir::Horizontal, Dir::Vertical] {
            g.block_rect(&Rect::new(45, -5, 55, 105), dir);
        }
        let err = find_soft_path(
            &g,
            1,
            Point::new(0, 50),
            Point::new(100, 50),
            MazeOptions::default(),
            10_000,
        )
        .unwrap_err();
        assert_eq!(err, MazeError::NoPath);
    }

    #[test]
    fn non_uniform_tracks_give_physical_lengths() {
        // Tracks at 0, 10, 50, 60: a run across the wide gap costs its
        // physical distance, not a unit step.
        let ts = TrackSet::from_offsets(vec![0, 10, 50, 60]);
        let mut g = GridModel::new(Rect::new(0, 0, 60, 60), ts.clone(), ts);
        let p = route_maze(
            &mut g,
            1,
            Point::new(0, 0),
            Point::new(60, 0),
            MazeOptions::default(),
        )
        .expect("routes");
        assert_eq!(p.route.wire_length(), 60);
        assert_eq!(p.cost, 60);
    }

    #[test]
    fn off_grid_terminal_errors() {
        let mut g = grid(100, 10);
        let err = route_maze(
            &mut g,
            1,
            Point::new(3, 50),
            Point::new(100, 50),
            MazeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MazeError::OffGrid(_)));
    }
}
