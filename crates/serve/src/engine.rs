//! The deterministic round-based scheduler (see the crate docs for the
//! model). Everything the engine logs or returns is a pure function of
//! (job set, budgets): step counts, never wall clock.

use crate::journal::{JobJournal, RecoveredJob};
use crate::{record_of, JobInput, JobStatus, LoadedChip, ServeConfig, ServeError};
use ocr_core::{resume_from_doc, CheckpointSpec, FlowOptions, FlowResult, RunSession};
use ocr_exec::{RunControl, TaskOutcome, TripReason};
use ocr_io::ckpt::parse_checkpoint;
use ocr_io::job::{valid_job_name, write_results, JobRecord, JobSpec};
use ocr_io::write_routes;
use ocr_netlist::validate_routed_design;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of arriving jobs. The engine polls it once per round (and
/// while idle); returning `None` closes the intake — the service then
/// drains its queue and stops.
///
/// `idle` is `true` when the engine has no queued work: a watching
/// intake may block (sleep between directory scans) only then, and must
/// return promptly — with an empty batch if nothing arrived — when the
/// engine has jobs to run.
pub trait Intake {
    /// The next batch of submissions, or `None` once closed.
    fn poll(&mut self, idle: bool) -> Option<Vec<JobInput>>;

    /// Called once the engine has durably accepted the last polled
    /// batch (journaled and fsynced). An intake backed by consumable
    /// sources (spool files) deletes them here, so a crash between
    /// poll and acknowledge redelivers the batch instead of losing
    /// it. The default does nothing.
    fn ack(&mut self) {}

    /// Called when the engine's global step budget is exhausted: every
    /// job the intake delivers from here on is finalized unrun
    /// (`rejected`/`preempted`), so an admission-controlled intake —
    /// the network front-end — should start shedding new submissions
    /// with a typed `overload` rejection instead of accepting work the
    /// engine can no longer serve. The default does nothing.
    fn budget_exhausted(&mut self) {}
}

/// An intake with nothing to add: the engine runs exactly the jobs it
/// was handed and stops.
struct ClosedIntake;

impl Intake for ClosedIntake {
    fn poll(&mut self, _idle: bool) -> Option<Vec<JobInput>> {
        None
    }
}

/// The service's answer for one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Flow the job asked for.
    pub flow: String,
    /// Typed terminal status.
    pub status: JobStatus,
    /// Deterministic steps charged across every slice.
    pub steps: u64,
    /// Nets routed in the final (possibly partial) design.
    pub routed: u64,
    /// Nets degraded in the final design.
    pub degraded: u64,
    /// Times the scheduler preempted the job to a checkpoint.
    pub preempts: u64,
    /// Failure / rejection detail; empty when there is nothing to add.
    pub detail: String,
    /// The routed design as `write_routes` text (absent for jobs that
    /// never produced one).
    pub routes: Option<String>,
    /// The job's `ocr-stats-v1` document (absent for jobs that never
    /// ran).
    pub stats: Option<String>,
}

impl JobReport {
    /// The job's `ocr-results-v1` record.
    pub fn record(&self) -> JobRecord {
        record_of(self)
    }
}

/// What one service run produced, in submission order.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Every job answered, in submission order.
    pub jobs: Vec<JobReport>,
    /// The deterministic admission log, one event per line, ending
    /// with the service summary line.
    pub log: Vec<String>,
    /// Steps charged across all jobs.
    pub total_steps: u64,
    /// Rounds the scheduler ran.
    pub rounds: u64,
}

impl ServeReport {
    /// The `ocr-results-v1` records, one per job *name* in submission
    /// order. `ocr-results-v1` keys records by name, so when a
    /// duplicate-name submission was rejected the first job's answer
    /// owns the record; the rejection itself is still visible in
    /// [`ServeReport::jobs`] and the log.
    pub fn records(&self) -> Vec<JobRecord> {
        let mut seen = std::collections::BTreeSet::new();
        self.jobs
            .iter()
            .filter(|j| seen.insert(j.name.as_str()))
            .map(record_of)
            .collect()
    }

    /// The final summary line of the log.
    pub fn summary(&self) -> &str {
        self.log.last().map(|s| s.as_str()).unwrap_or("")
    }
}

/// Runs a fixed job set to completion (a closed intake) — the
/// `--manifest`-without-`--spool` path and the natural embedded API.
///
/// # Errors
///
/// [`ServeError`] on unusable configuration or a service-file I/O
/// failure; per-job failures are statuses in the report, not errors.
pub fn run_jobs(jobs: Vec<JobInput>, config: &ServeConfig) -> Result<ServeReport, ServeError> {
    serve(jobs, &mut ClosedIntake, config)
}

/// Distinguishes scratch directories of concurrent engines in one
/// process (tests run several).
static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// Runs the service: `initial` jobs first, then whatever `intake`
/// delivers, until the intake closes and the queue drains (or the
/// global step budget finalizes everything early).
///
/// # Errors
///
/// [`ServeError`] on unusable configuration or a service-file I/O
/// failure; per-job failures are statuses in the report, not errors.
pub fn serve(
    initial: Vec<JobInput>,
    intake: &mut dyn Intake,
    config: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    if config.max_concurrent == 0 {
        return Err(ServeError::Config(
            "max_concurrent must be at least 1".into(),
        ));
    }
    if config.quantum == 0 {
        return Err(ServeError::Config("quantum must be at least 1".into()));
    }
    let (out, scratch) = match &config.out {
        Some(dir) => (dir.clone(), false),
        None => {
            let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!("ocr-serve-{}-{n}", std::process::id()));
            (dir, true)
        }
    };
    std::fs::create_dir_all(&out).map_err(|e| ServeError::Io {
        path: out.clone(),
        message: e.to_string(),
    })?;
    let journal = match &config.journal {
        Some(dir) => {
            let (journal, recovered, warnings) = JobJournal::open(dir)?;
            Some((journal, recovered, warnings))
        }
        None => None,
    };
    let mut engine = Engine {
        config,
        out,
        persist: !scratch,
        states: Vec::new(),
        queue: Vec::new(),
        log: Vec::new(),
        used_steps: 0,
        rounds: 0,
        peak_queue: 0,
        journal: None,
        recovered: Vec::new(),
    };
    let result = match journal {
        Some((journal, recovered, warnings)) => {
            engine.journal = Some(journal);
            engine
                .recover(recovered, warnings)
                .and_then(|()| engine.run(initial, intake))
        }
        None => engine.run(initial, intake),
    };
    if scratch {
        let _ = std::fs::remove_dir_all(&engine.out);
    }
    result?;
    engine.finish_service()
}

/// Per-job scheduler state.
struct JobState {
    spec: JobSpec,
    /// A later submission reusing an earlier job's name. It is answered
    /// `rejected` in the report and log only — the first job owns the
    /// `out/<name>/` directory and the name's record in `results.txt`.
    duplicate: bool,
    loaded: Option<LoadedChip>,
    steps: u64,
    slices: u64,
    preempts: u64,
    ckpt_text: Option<String>,
    ckpt_path: PathBuf,
    /// The last (tripped) slice result — the partial answer a
    /// terminally preempted job is reported with.
    last: Option<FlowResult>,
    report: Option<JobReport>,
}

/// What one slice observed, returned through the isolated pool.
struct SliceOut {
    result: Result<FlowResult, String>,
    steps: u64,
    tripped: Option<TripReason>,
    ckpt_text: Option<String>,
}

/// One slice as handed to the pool (borrows the job's loaded chip).
struct SliceTask<'a> {
    name: String,
    loaded: &'a LoadedChip,
    salvage: bool,
    verify: bool,
    budget: u64,
    resumed: u64,
    resume_text: Option<String>,
    ckpt_path: PathBuf,
}

/// The slice budget for a job that has been preempted `preempts` times:
/// one quantum, doubled per preemption (capped), so a resumed search —
/// which re-charges the interrupted net's window attempts from scratch
/// — always eventually fits in one slice.
fn effective_quantum(quantum: u64, preempts: u64) -> u64 {
    quantum.saturating_mul(1u64 << preempts.min(20))
}

/// Runs one slice under its own `RunControl`. Panics unwind into the
/// pool's isolation (retried once, then `Poisoned`).
fn run_slice(task: &SliceTask<'_>) -> SliceOut {
    // Deterministic per-job fault site, so chaos plans can poison one
    // named job without racing on a global hit index.
    ocr_fault::point(&format!("serve.job.{}", task.name));
    let kind = task.loaded.kind;
    let mut resumed = task.resumed;
    let resume = match &task.resume_text {
        Some(text) => {
            let doc = match parse_checkpoint(&task.loaded.layout, text) {
                Ok(doc) => doc,
                Err(e) => {
                    return SliceOut {
                        result: Err(format!("checkpoint re-parse failed: {e}")),
                        steps: task.resumed,
                        tripped: None,
                        ckpt_text: None,
                    }
                }
            };
            // The checkpoint is the authority on progress: after a
            // crash the on-disk checkpoint can be *ahead* of the
            // journaled step count (the slice ran past its last
            // journaled preemption before dying). Resuming at the
            // checkpoint's own step count reproduces the uninterrupted
            // schedule; if it already overdraws this slice's budget the
            // control trips on its first poll and the slice re-emits
            // the identical preemption.
            resumed = doc.steps;
            match resume_from_doc(doc) {
                Ok(r) => Some(r),
                Err(e) => {
                    return SliceOut {
                        result: Err(format!("checkpoint resume failed: {e}")),
                        steps: task.resumed,
                        tripped: None,
                        ckpt_text: None,
                    }
                }
            }
        }
        None => None,
    };
    let control = RunControl::new()
        .with_step_budget(task.budget)
        .resumed_at(resumed);
    let session = RunSession {
        control: control.clone(),
        checkpoint: Some(CheckpointSpec {
            path: task.ckpt_path.clone(),
            every: 1,
            flow: kind.name().to_string(),
            chip_hash: task.loaded.chip_hash,
        }),
        resume,
    };
    let options = FlowOptions::new()
        .telemetry(true)
        .salvage(task.salvage)
        .verify(task.verify);
    let result = kind
        .build_with_ordering(options, task.loaded.ordering.clone())
        .run_controlled(&task.loaded.layout, &task.loaded.placement, &session)
        .map_err(|e| e.to_string());
    // The checkpoint the flow just wrote (final state, at the last
    // net-commit boundary) is what a later slice resumes from.
    let ckpt_text = std::fs::read_to_string(&task.ckpt_path).ok();
    SliceOut {
        result,
        steps: control.steps(),
        tripped: control.tripped(),
        ckpt_text,
    }
}

/// One journal-recovered job the engine still tracks for redelivery
/// deduplication: a submission arriving with a spec equal to an
/// unconsumed recovered one is the *same* job, redelivered by a source
/// the crash prevented from being acknowledged.
struct Recovered {
    spec: JobSpec,
    seq: usize,
    /// Journaled progress, applied when a redelivery supplies the chip.
    steps: u64,
    preempts: u64,
    /// Still waiting for a redelivery to supply the chip (the journal
    /// recorded no reload base).
    awaiting: bool,
    /// A redelivered submission already matched this entry.
    consumed: bool,
}

struct Engine<'a> {
    config: &'a ServeConfig,
    out: PathBuf,
    persist: bool,
    states: Vec<JobState>,
    queue: Vec<usize>,
    log: Vec<String>,
    used_steps: u64,
    rounds: u64,
    peak_queue: usize,
    journal: Option<JobJournal>,
    recovered: Vec<Recovered>,
}

impl Engine<'_> {
    fn run(&mut self, initial: Vec<JobInput>, intake: &mut dyn Intake) -> Result<(), ServeError> {
        self.enqueue(initial)?;
        let mut closed = false;
        loop {
            if !closed {
                match intake.poll(self.queue.is_empty()) {
                    None => closed = true,
                    Some(batch) => {
                        self.enqueue(batch)?;
                        // The batch is journaled and fsynced: the
                        // source may consume its files now.
                        intake.ack();
                    }
                }
            }
            if self.exhausted() {
                intake.budget_exhausted();
                self.finalize_queue()?;
            }
            if self.queue.is_empty() {
                if closed {
                    self.resolve_awaiting()?;
                    return Ok(());
                }
                continue;
            }
            self.round()?;
        }
    }

    /// Answers every recovered job still waiting for a redelivered
    /// chip once the intake has closed — nothing can supply it now,
    /// and every accepted job must be answered.
    fn resolve_awaiting(&mut self) -> Result<(), ServeError> {
        let waiting: Vec<usize> = self
            .recovered
            .iter()
            .filter(|r| r.awaiting && !r.consumed)
            .map(|r| r.seq)
            .collect();
        for seq in waiting {
            if self.states[seq].report.is_none() {
                self.reject(
                    seq,
                    "recovered from the journal but its chip was never redelivered".to_string(),
                )?;
            }
        }
        if let Some(journal) = self.journal.as_mut() {
            journal.sync()?;
        }
        Ok(())
    }

    /// Rebuilds scheduler state from the replayed journal: terminal
    /// jobs with intact answers are adopted as-is, everything else is
    /// requeued — preempted jobs from their checkpoints, jobs whose
    /// answers the crash tore from scratch or their last checkpoint.
    fn recover(
        &mut self,
        recovered: Vec<RecoveredJob>,
        warnings: Vec<String>,
    ) -> Result<(), ServeError> {
        self.log.extend(warnings);
        for job in recovered {
            let seq = self.states.len();
            let duplicate = self.states.iter().any(|s| s.spec.name == job.spec.name);
            let ckpt_path = job
                .ckpt
                .clone()
                .unwrap_or_else(|| self.out.join(&job.spec.name).join("job.ckpt"));
            self.states.push(JobState {
                spec: job.spec.clone(),
                duplicate,
                loaded: None,
                steps: 0,
                slices: 0,
                preempts: 0,
                ckpt_text: None,
                ckpt_path,
                last: None,
                report: None,
            });
            self.recovered.push(Recovered {
                spec: job.spec.clone(),
                seq,
                steps: job.steps,
                preempts: job.preempts,
                awaiting: false,
                consumed: false,
            });
            match &job.end {
                Some(record) if self.trusted(seq, record) => self.adopt(seq, record),
                end => {
                    if let Some(record) = end {
                        self.log.push(format!(
                            "recover {}: journaled {} but its answer files are missing; \
                             re-running",
                            job.spec.name, record.status
                        ));
                    }
                    if self.states[seq].duplicate {
                        self.reject(seq, "duplicate job name".to_string())?;
                    } else {
                        match &job.base {
                            Some(base) => {
                                let input = crate::intake::load_job(job.spec.clone(), base);
                                self.attach_load(seq, input, job.steps, job.preempts)?;
                            }
                            None => {
                                // Nothing on record to reload the chip
                                // from: hold the seat until the source
                                // redelivers it (or the intake closes).
                                self.recovered[seq].awaiting = true;
                                self.log.push(format!(
                                    "recover {}: waiting for its chip to be redelivered",
                                    job.spec.name
                                ));
                            }
                        }
                    }
                }
            }
        }
        if let Some(journal) = self.journal.as_mut() {
            journal.sync()?;
        }
        Ok(())
    }

    /// `true` when a journaled terminal record can be adopted without
    /// re-running the job: its answer files (written *before* the `end`
    /// record) are present and agree with it. Rejections never produced
    /// answers, so the record alone is the answer.
    fn trusted(&self, seq: usize, record: &JobRecord) -> bool {
        if record.status == JobStatus::Rejected.name() {
            return true;
        }
        let s = &self.states[seq];
        if s.duplicate || !self.persist || !valid_job_name(&s.spec.name) {
            return true;
        }
        let dir = self.out.join(&s.spec.name);
        let status = match std::fs::read_to_string(dir.join("status")) {
            Ok(text) => text,
            Err(_) => return false,
        };
        if status.split_whitespace().next() != Some(record.status.as_str()) {
            return false;
        }
        let answered =
            record.status == JobStatus::Done.name() || record.status == JobStatus::Salvaged.name();
        !answered || dir.join("routes.txt").exists()
    }

    /// Adopts a trusted journaled terminal record: the job keeps its
    /// on-disk answers and is reported without re-running.
    fn adopt(&mut self, seq: usize, record: &JobRecord) {
        let status = JobStatus::from_name(&record.status).unwrap_or(JobStatus::Failed);
        self.used_steps += record.steps;
        let s = &mut self.states[seq];
        s.steps = record.steps;
        s.preempts = record.preempts;
        let report = JobReport {
            name: s.spec.name.clone(),
            flow: s.spec.flow.clone(),
            status,
            steps: record.steps,
            routed: record.routed,
            degraded: record.degraded,
            preempts: record.preempts,
            detail: record.detail.clone(),
            routes: None,
            stats: None,
        };
        s.report = Some(report);
        self.log
            .push(format!("recover {}: {status} (journaled)", record.name));
    }

    /// Installs a (re)loaded chip on a recovered job and requeues it,
    /// resuming from its last committed checkpoint when one survives.
    fn attach_load(
        &mut self,
        seq: usize,
        input: JobInput,
        steps: u64,
        preempts: u64,
    ) -> Result<(), ServeError> {
        let loaded = match input.load {
            Err(reason) => return self.reject(seq, reason),
            Ok(loaded) => loaded,
        };
        let name = self.states[seq].spec.name.clone();
        let mut steps = steps;
        let mut preempts = preempts;
        let mut ckpt_text = None;
        if preempts > 0 {
            let path = self.states[seq].ckpt_path.clone();
            match std::fs::read_to_string(&path) {
                Ok(text) => match parse_checkpoint(&loaded.layout, &text) {
                    Ok(_) => ckpt_text = Some(text),
                    Err(e) => self.log.push(format!(
                        "recover {name}: checkpoint unusable ({e}); restarting from scratch"
                    )),
                },
                Err(e) => self.log.push(format!(
                    "recover {name}: checkpoint unreadable ({e}); restarting from scratch"
                )),
            }
            if ckpt_text.is_none() {
                steps = 0;
                preempts = 0;
            }
        }
        self.used_steps += steps;
        let s = &mut self.states[seq];
        s.loaded = Some(loaded);
        s.ckpt_text = ckpt_text;
        s.steps = steps;
        s.preempts = preempts;
        // Mirrors the uninterrupted run's slice count at this point, so
        // the admit/resume log split and a later global-budget drain
        // settle the job exactly as they would have.
        s.slices = preempts;
        ocr_obs::count("recover.jobs_resumed", 1);
        if preempts > 0 {
            self.log.push(format!(
                "recover {name}: resuming at {steps} steps after {preempts} preempt(s)"
            ));
        } else {
            self.log.push(format!("recover {name}: restarting"));
        }
        self.queue.push(seq);
        Ok(())
    }

    /// `true` once the global step budget has drained.
    fn exhausted(&self) -> bool {
        self.config
            .max_total_steps
            .is_some_and(|total| self.used_steps >= total)
    }

    fn enqueue(&mut self, batch: Vec<JobInput>) -> Result<(), ServeError> {
        let journaling = self.journal.is_some() && !batch.is_empty();
        for input in batch {
            // A submission spec-equal to an unconsumed recovered job is
            // that job, redelivered by a source the crash prevented from
            // being acknowledged — not a new (duplicate) submission.
            if let Some(pos) = self
                .recovered
                .iter()
                .position(|r| !r.consumed && r.spec == input.spec)
            {
                let r = &mut self.recovered[pos];
                r.consumed = true;
                let (seq, steps, preempts, awaiting) = (r.seq, r.steps, r.preempts, r.awaiting);
                if awaiting && self.states[seq].report.is_none() {
                    self.log
                        .push(format!("recover {}: chip redelivered", input.spec.name));
                    self.attach_load(seq, input, steps, preempts)?;
                }
                continue;
            }
            let seq = self.states.len();
            let duplicate = self.states.iter().any(|s| s.spec.name == input.spec.name);
            let ckpt_path = self.out.join(&input.spec.name).join("job.ckpt");
            self.states.push(JobState {
                spec: input.spec,
                duplicate,
                loaded: None,
                steps: 0,
                slices: 0,
                preempts: 0,
                ckpt_text: None,
                ckpt_path,
                last: None,
                report: None,
            });
            if let Some(journal) = self.journal.as_mut() {
                let s = &self.states[seq];
                journal.accept(seq, &s.spec, input.base.as_deref())?;
            }
            if duplicate {
                self.reject(seq, "duplicate job name".to_string())?;
                continue;
            }
            match input.load {
                Err(reason) => self.reject(seq, reason)?,
                Ok(_) if self.exhausted() => {
                    self.reject(seq, "global step budget exhausted".to_string())?;
                }
                Ok(loaded) => {
                    self.states[seq].loaded = Some(loaded);
                    self.queue.push(seq);
                }
            }
        }
        if journaling {
            if let Some(journal) = self.journal.as_mut() {
                journal.sync()?;
            }
            // Accepts are durable; the run loop acknowledges the intake
            // next. A kill here redelivers the batch on restart, where
            // redelivery dedup recognizes every job.
            ocr_fault::point("serve.kill.accept");
        }
        Ok(())
    }

    /// One barrier round: sort, admit under the global budget, run the
    /// batch isolated on the pool, then settle outcomes in queue order.
    fn round(&mut self) -> Result<(), ServeError> {
        ocr_fault::point("serve.kill.round");
        self.rounds += 1;
        let round = self.rounds;
        ocr_obs::count("serve.rounds", 1);
        ocr_obs::count_max("serve.queue.depth", self.queue.len() as u64);
        self.peak_queue = self.peak_queue.max(self.queue.len());
        // Strict priority, then round-robin within a class, then
        // submission order: fully deterministic.
        let states = &self.states;
        self.queue.sort_by_key(|&i| {
            (
                std::cmp::Reverse(states[i].spec.priority),
                states[i].slices,
                i,
            )
        });
        // Admission: grant slices while the global budget has headroom.
        let mut batch: Vec<usize> = Vec::new();
        let mut budgets: Vec<u64> = Vec::new();
        let mut planned: u64 = 0;
        for &i in &self.queue {
            if batch.len() >= self.config.max_concurrent {
                break;
            }
            let s = &self.states[i];
            let mut alloc = effective_quantum(self.config.quantum, s.preempts);
            if let Some(total) = self.config.max_total_steps {
                let remaining = total
                    .saturating_sub(self.used_steps)
                    .saturating_sub(planned);
                if remaining == 0 {
                    break;
                }
                alloc = alloc.min(remaining);
            }
            let mut budget = s.steps.saturating_add(alloc);
            if let Some(cap) = s.spec.max_steps {
                budget = budget.min(cap);
            }
            planned += budget.saturating_sub(s.steps);
            batch.push(i);
            budgets.push(budget);
        }
        if batch.is_empty() {
            // No headroom for anyone: the budget is as good as drained.
            return self.finalize_queue();
        }
        self.queue.retain(|i| !batch.contains(i));
        for (&i, &budget) in batch.iter().zip(&budgets) {
            let s = &self.states[i];
            let slice = budget.saturating_sub(s.steps);
            if s.slices == 0 {
                ocr_obs::count("serve.jobs.admitted", 1);
                self.log.push(format!(
                    "round {round}: admit {} slice {slice} (priority {})",
                    s.spec.name, s.spec.priority
                ));
                if let Some(journal) = self.journal.as_mut() {
                    journal.start(i)?;
                }
                self.ensure_job_dir(i)?;
            } else {
                ocr_obs::count("serve.jobs.resumed", 1);
                self.log.push(format!(
                    "round {round}: resume {} slice {slice} at {} steps",
                    s.spec.name, s.steps
                ));
            }
        }
        let tasks: Vec<SliceTask<'_>> = batch
            .iter()
            .zip(&budgets)
            .map(|(&i, &budget)| {
                let s = &self.states[i];
                let loaded = s.loaded.as_ref().expect("queued jobs are loaded");
                SliceTask {
                    name: s.spec.name.clone(),
                    loaded,
                    salvage: s.spec.salvage,
                    verify: s.spec.verify,
                    budget,
                    resumed: s.steps,
                    resume_text: s.ckpt_text.clone(),
                    ckpt_path: s.ckpt_path.clone(),
                }
            })
            .collect();
        let outcomes = ocr_exec::parallel_map_isolated(&tasks, run_slice);
        drop(tasks);
        // The slices ran (checkpoints may be ahead on disk) but nothing
        // is settled or journaled yet — the canonical torn-round kill.
        ocr_fault::point("serve.kill.settle");
        for ((&i, &budget), outcome) in batch.iter().zip(&budgets).zip(outcomes) {
            match outcome {
                TaskOutcome::Poisoned { message } => {
                    // The slice's control died with the task, so its
                    // charges are unknowable; the job is answered as
                    // failed and the daemon (and its siblings) move on.
                    self.finish(i, JobStatus::Failed, format!("poisoned: {message}"), None)?;
                }
                TaskOutcome::Done { value, .. } => {
                    let delta = value.steps.saturating_sub(self.states[i].steps);
                    self.used_steps += delta;
                    self.states[i].steps = value.steps;
                    self.states[i].slices += 1;
                    match value.result {
                        Err(message) => {
                            self.finish(i, JobStatus::Failed, message, None)?;
                        }
                        Ok(result) => {
                            let s = &self.states[i];
                            let own_cap_hit =
                                s.spec.max_steps.is_some_and(|cap| value.steps >= cap);
                            let sliced = s.spec.max_steps.is_none_or(|cap| budget < cap);
                            if value.tripped == Some(TripReason::BudgetExceeded)
                                && sliced
                                && !own_cap_hit
                            {
                                // Preempted at the slice boundary: keep
                                // the checkpoint, requeue for resume.
                                match value.ckpt_text {
                                    Some(text) => {
                                        ocr_obs::count("serve.preemptions", 1);
                                        let s = &mut self.states[i];
                                        s.ckpt_text = Some(text);
                                        s.preempts += 1;
                                        s.last = Some(result);
                                        self.log.push(format!(
                                            "round {round}: preempt {} at {} steps",
                                            self.states[i].spec.name, value.steps
                                        ));
                                        if let Some(journal) = self.journal.as_mut() {
                                            let s = &self.states[i];
                                            journal.preempt(
                                                i,
                                                s.steps,
                                                s.preempts,
                                                &s.ckpt_path,
                                            )?;
                                        }
                                        self.queue.push(i);
                                    }
                                    None => {
                                        self.finish(
                                            i,
                                            JobStatus::Failed,
                                            "preempted but its checkpoint is unreadable".into(),
                                            None,
                                        )?;
                                    }
                                }
                            } else {
                                self.finish_with_result(i, result)?;
                            }
                        }
                    }
                }
            }
        }
        if let Some(journal) = self.journal.as_mut() {
            // The round's settlement — preemptions and terminal records
            // — commits as one durable unit at the barrier.
            journal.sync()?;
        }
        Ok(())
    }

    /// Terminal settlement of a completed slice (ran to the end, or to
    /// the job's *own* step cap — both are full answers).
    fn finish_with_result(&mut self, i: usize, result: FlowResult) -> Result<(), ServeError> {
        let validation = validate_routed_design(&result.layout, &result.design);
        let verify_violations = result
            .verify
            .as_ref()
            .map_or(0, |report| report.violations.len());
        let degraded = result.degradation.as_ref().map_or(0, |d| d.nets.len()) as u64;
        let (status, detail) = if !validation.is_empty() {
            (
                JobStatus::Failed,
                format!(
                    "{} validation error(s) (first: {})",
                    validation.len(),
                    validation[0]
                ),
            )
        } else if verify_violations > 0 {
            (
                JobStatus::Failed,
                format!("{verify_violations} verification violation(s)"),
            )
        } else if degraded > 0 {
            (JobStatus::Salvaged, String::new())
        } else {
            (JobStatus::Done, String::new())
        };
        self.finish(i, status, detail, Some(result))
    }

    /// Records a terminal status, logs it, bumps counters, and writes
    /// the per-job answer files when a results directory is configured.
    fn finish(
        &mut self,
        i: usize,
        status: JobStatus,
        detail: String,
        result: Option<FlowResult>,
    ) -> Result<(), ServeError> {
        let s = &self.states[i];
        let answer = result.as_ref().or(s.last.as_ref());
        let routed = answer.map_or(0, |r| {
            r.design
                .routes
                .iter()
                .filter(|route| route.is_some())
                .count() as u64
        });
        let degraded = answer.map_or(0, |r| {
            r.degradation.as_ref().map_or(0, |d| d.nets.len()) as u64
        });
        let routes = answer.map(|r| write_routes(&r.layout, &r.design));
        let stats = answer.and_then(|r| {
            r.telemetry
                .as_ref()
                .map(|t| ocr_obs::stats_json(&[(s.spec.name.as_str(), flow_label(s), t)]))
        });
        let report = JobReport {
            name: s.spec.name.clone(),
            flow: s.spec.flow.clone(),
            status,
            steps: s.steps,
            routed,
            degraded,
            preempts: s.preempts,
            detail,
            routes,
            stats,
        };
        ocr_obs::count(
            match status {
                JobStatus::Done => "serve.jobs.done",
                JobStatus::Salvaged => "serve.jobs.salvaged",
                JobStatus::Preempted => "serve.jobs.preempted",
                JobStatus::Rejected => "serve.jobs.rejected",
                JobStatus::Failed => "serve.jobs.failed",
            },
            1,
        );
        let line = match status {
            JobStatus::Rejected => format!("reject {}: {}", report.name, report.detail),
            _ => {
                let mut line = format!(
                    "round {}: finish {} {status} steps {} routed {} degraded {}",
                    self.rounds, report.name, report.steps, report.routed, report.degraded
                );
                if !report.detail.is_empty() {
                    line.push_str(&format!(" ({})", report.detail));
                }
                line
            }
        };
        self.log.push(line);
        if !self.states[i].duplicate {
            self.write_job_files(&report)?;
        }
        // Answer files first, then the terminal record: a journaled
        // `end` always has its answers on disk. A kill in between
        // re-runs the job deterministically on restart.
        ocr_fault::point("serve.kill.finish");
        if let Some(journal) = self.journal.as_mut() {
            journal.end(i, &record_of(&report))?;
        }
        self.states[i].last = None;
        self.states[i].report = Some(report);
        Ok(())
    }

    fn reject(&mut self, i: usize, reason: String) -> Result<(), ServeError> {
        self.finish(i, JobStatus::Rejected, reason, None)
    }

    /// The global budget drained: running checkpointed jobs end
    /// `preempted` (their partial design is the answer), jobs that
    /// never got a slice end `rejected`.
    fn finalize_queue(&mut self) -> Result<(), ServeError> {
        let queue = std::mem::take(&mut self.queue);
        let drained = !queue.is_empty();
        for i in queue {
            if self.states[i].slices > 0 {
                self.finish(
                    i,
                    JobStatus::Preempted,
                    "global step budget exhausted".into(),
                    None,
                )?;
            } else {
                self.reject(i, "global step budget exhausted".to_string())?;
            }
        }
        if drained {
            if let Some(journal) = self.journal.as_mut() {
                journal.sync()?;
            }
        }
        Ok(())
    }

    fn ensure_job_dir(&self, i: usize) -> Result<(), ServeError> {
        let dir = self.out.join(&self.states[i].spec.name);
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })
    }

    fn write_job_files(&self, report: &JobReport) -> Result<(), ServeError> {
        if !self.persist || !valid_job_name(&report.name) {
            return Ok(());
        }
        let dir = self.out.join(&report.name);
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let mut status = report.status.name().to_string();
        if !report.detail.is_empty() {
            status.push(' ');
            status.push_str(&report.detail);
        }
        status.push('\n');
        // Answers first, `status` last: each write is atomic, so a
        // crash can tear *between* files but never inside one, and a
        // `status` that exists always points at complete answers.
        if let Some(routes) = &report.routes {
            durable_write(&dir.join("routes.txt"), routes)?;
        }
        if let Some(stats) = &report.stats {
            durable_write(&dir.join("stats.json"), stats)?;
        }
        durable_write(&dir.join("status"), &status)
    }

    /// Appends the summary line and writes the service-level files.
    fn finish_service(mut self) -> Result<ServeReport, ServeError> {
        let jobs: Vec<JobReport> = self
            .states
            .into_iter()
            .map(|s| s.report.expect("every submitted job is answered"))
            .collect();
        let count = |status: JobStatus| jobs.iter().filter(|j| j.status == status).count();
        let admitted = jobs
            .iter()
            .filter(|j| j.status != JobStatus::Rejected)
            .count();
        let resumed: u64 = jobs.iter().map(|j| j.preempts).sum();
        self.log.push(format!(
            "serve: jobs {} admitted {admitted} preemptions {resumed} rejected {} \
             done {} salvaged {} preempted {} failed {} steps {} rounds {} peak-queue {}",
            jobs.len(),
            count(JobStatus::Rejected),
            count(JobStatus::Done),
            count(JobStatus::Salvaged),
            count(JobStatus::Preempted),
            count(JobStatus::Failed),
            self.used_steps,
            self.rounds,
            self.peak_queue
        ));
        let report = ServeReport {
            jobs,
            log: self.log,
            total_steps: self.used_steps,
            rounds: self.rounds,
        };
        if let Some(journal) = self.journal.as_mut() {
            journal.sync()?;
        }
        // Everything is settled and journaled; only the service-level
        // summary files remain. A kill here loses nothing a restart
        // cannot republish from the journal.
        ocr_fault::point("serve.kill.final");
        if self.persist {
            let mut log_text = report.log.join("\n");
            log_text.push('\n');
            durable_write(&self.out.join("serve.log"), &log_text)?;
            durable_write(
                &self.out.join("results.txt"),
                &write_results(&report.records()),
            )?;
        }
        Ok(report)
    }
}

/// A durable service-file write: atomic (temp + fsync + rename), with
/// bounded retries around the injectable `answers.write` fault site.
fn durable_write(path: &std::path::Path, text: &str) -> Result<(), ServeError> {
    ocr_io::retry_io(|| {
        if ocr_fault::point("answers.write") {
            return Err(std::io::Error::other("injected transient write failure"));
        }
        ocr_io::atomic_write(path, text)
    })
    .map_err(|e| ServeError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

fn flow_label(state: &JobState) -> &str {
    state
        .loaded
        .as_ref()
        .map(|l| l.kind.name())
        .unwrap_or(state.spec.flow.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_quantum_doubles_and_saturates() {
        assert_eq!(effective_quantum(8, 0), 8);
        assert_eq!(effective_quantum(8, 1), 16);
        assert_eq!(effective_quantum(8, 3), 64);
        assert_eq!(effective_quantum(u64::MAX, 5), u64::MAX);
        assert_eq!(effective_quantum(8, 64), 8 << 20, "doubling is capped");
    }

    #[test]
    fn bad_config_is_a_service_error() {
        let cfg = ServeConfig {
            max_concurrent: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            run_jobs(Vec::new(), &cfg),
            Err(ServeError::Config(_))
        ));
        let cfg = ServeConfig {
            quantum: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            run_jobs(Vec::new(), &cfg),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn empty_job_set_produces_an_empty_summary() {
        let report = run_jobs(Vec::new(), &ServeConfig::default()).expect("serves");
        assert!(report.jobs.is_empty());
        assert_eq!(report.rounds, 0);
        assert!(report.summary().starts_with("serve: jobs 0"));
    }
}
