//! The TCP front-end: an `ocr-wire-v1` listener that feeds the
//! deterministic engine through the same [`crate::Intake`] trait the
//! spool uses, so journaling, recovery, and scheduling are reused
//! unchanged — a TCP-submitted job is byte-identical to the same job
//! spooled on disk.
//!
//! Robustness is the point of this module, not the transport:
//!
//! * **Bounded connections** — at most `max_conns` handler threads;
//!   while the pool is full the acceptor simply stops accepting, so
//!   excess clients queue in the kernel backlog (backpressure) instead
//!   of spawning unbounded work.
//! * **Deadlines** — every read and write carries a timeout; a frame
//!   that does not start within `idle_timeout_ms` or finish within
//!   `io_timeout_ms` ends the connection with a typed `error timeout`
//!   (the slow-loris answer), counted in `net.timeouts`.
//! * **Typed wire failures** — torn, oversized, and checksum-bad
//!   frames are [`ocr_io::wire::WireError`]s answered as `error
//!   <kind>`; a handler panic is caught per-connection. The daemon is
//!   never poisoned by a hostile byte stream.
//! * **Per-tenant quotas** — a token bucket per `tenant` (the
//!   anonymous tenant is `-`) sheds submissions above the configured
//!   rate/burst with `rejected <name> quota retry-after <ms>`.
//! * **Load shedding** — a full pending queue, or an engine whose
//!   global step budget has drained ([`crate::Intake::budget_exhausted`]),
//!   answers `rejected … overload retry-after <ms>` instead of
//!   accepting work the engine cannot serve.
//!
//! Submitted chips are staged as `.ocr` files in a durable staging
//! directory and the job's reload base is journaled, so a `--journal`
//! kill-restart recovers TCP submissions exactly like spooled ones.
//! `accepted` is only answered after the engine has durably accepted
//! the batch (journaled and fsynced) — the ack path of the intake
//! protocol.

use crate::intake::load_job;
use crate::{Intake, JobInput, ServeError};
use ocr_io::wire::{
    frame, parse_request, read_frame, read_magic, response_payload, write_magic, RejectReason,
    Request, Response, WireError,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Per-tenant token-bucket quota: sustained `rate_per_sec` submissions
/// per second with bursts up to `burst`. A rate of 0 never refills —
/// each tenant gets exactly `burst` submissions for the lifetime of
/// the listener (useful for deterministic tests and hard caps).
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Tokens refilled per second.
    pub rate_per_sec: u64,
    /// Bucket capacity (maximum burst).
    pub burst: u64,
}

/// Configuration of the TCP front-end.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port —
    /// read the result back from [`NetIntake::local_addr`]).
    pub addr: String,
    /// Maximum concurrent connections; excess clients wait in the
    /// kernel backlog.
    pub max_conns: usize,
    /// Per-read/per-write deadline once a frame has started, in ms.
    pub io_timeout_ms: u64,
    /// How long a connection may sit between frames before it is
    /// closed, in ms.
    pub idle_timeout_ms: u64,
    /// Maximum frame payload size in bytes; larger headers are
    /// rejected before any payload is read.
    pub max_frame: usize,
    /// Maximum submissions queued ahead of the engine; beyond this,
    /// submissions are shed with `rejected … overload`.
    pub max_pending: usize,
    /// How long an idle engine poll blocks waiting for submissions, in
    /// ms (bounds shutdown and co-intake polling latency).
    pub poll_ms: u64,
    /// Directory where submitted chips are staged as `.ocr` files.
    /// Must be durable when the service journals (recovery reloads
    /// chips from here). `None` stages under a temp directory that is
    /// removed when the intake drops.
    pub stage: Option<PathBuf>,
    /// Per-tenant admission quota; `None` admits everyone.
    pub quota: Option<QuotaConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 8,
            io_timeout_ms: 5000,
            idle_timeout_ms: 10_000,
            max_frame: ocr_io::wire::DEFAULT_MAX_FRAME,
            max_pending: 64,
            poll_ms: 200,
            stage: None,
            quota: None,
        }
    }
}

/// One submission staged and loaded, waiting for the engine: the input
/// plus the channel that tells its handler the engine durably accepted
/// it (sender dropped = service closed before acceptance).
struct Pending {
    input: JobInput,
    done: Sender<()>,
}

/// Integer token bucket in milli-tokens (1 token = 1000), refilled
/// from elapsed wall-clock milliseconds.
struct Bucket {
    milli: u64,
    last: Instant,
}

impl Bucket {
    fn take(&mut self, quota: &QuotaConfig, now: Instant) -> Result<(), u64> {
        let elapsed_ms = now.duration_since(self.last).as_millis() as u64;
        self.last = now;
        self.milli = self
            .milli
            .saturating_add(elapsed_ms.saturating_mul(quota.rate_per_sec))
            .min(quota.burst.saturating_mul(1000));
        if self.milli >= 1000 {
            self.milli -= 1000;
            return Ok(());
        }
        // Milliseconds until a whole token exists.
        let needed = 1000 - self.milli;
        let retry_after = if quota.rate_per_sec == 0 {
            60_000
        } else {
            needed.div_ceil(quota.rate_per_sec).max(1)
        };
        Err(retry_after)
    }
}

/// State shared by the acceptor, the handler threads, and the intake.
struct Queue {
    pending: Vec<Pending>,
    buckets: HashMap<String, Bucket>,
    /// `try_clone`d handles of live connections, so teardown can
    /// `shutdown()` them and unblock handlers immediately.
    streams: HashMap<u64, TcpStream>,
}

struct Shared {
    queue: Mutex<Queue>,
    arrived: Condvar,
    shutdown: AtomicBool,
    /// The engine's global step budget is gone: shed new submissions.
    shed: AtomicBool,
    conns: AtomicUsize,
    submissions: AtomicU64,
    config: NetConfig,
    stage: PathBuf,
    /// Telemetry / fault context captured at bind, re-installed in
    /// every spawned thread.
    obs: Option<ocr_obs::Collector>,
    fault: Option<ocr_fault::FaultPlan>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn closing(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.arrived.notify_all();
    }
}

/// The TCP [`crate::Intake`]: owns the listener, the acceptor thread,
/// and the staged submissions queue.
pub struct NetIntake {
    shared: Arc<Shared>,
    local: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    /// Senders of the last polled batch, released on [`Intake::ack`].
    awaiting: Vec<Sender<()>>,
    /// The stage directory was created by us under temp: remove it on
    /// drop.
    own_stage: bool,
}

/// The five service counters of the network front-end, declared at 0
/// when the listener binds so `serve-stats.json` always carries them.
pub const NET_COUNTERS: [&str; 5] = [
    "net.conns",
    "net.frames",
    "net.rejected.quota",
    "net.rejected.overload",
    "net.timeouts",
];

impl NetIntake {
    /// Binds the listener and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound or the
    /// staging directory cannot be created.
    pub fn bind(config: NetConfig) -> Result<NetIntake, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Io {
            path: PathBuf::from(&config.addr),
            message: format!("bind: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| ServeError::Io {
            path: PathBuf::from(&config.addr),
            message: format!("local_addr: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| ServeError::Io {
            path: PathBuf::from(&config.addr),
            message: format!("set_nonblocking: {e}"),
        })?;
        static STAGE_ID: AtomicU64 = AtomicU64::new(0);
        let (stage, own_stage) = match &config.stage {
            Some(dir) => (dir.clone(), false),
            None => {
                let n = STAGE_ID.fetch_add(1, Ordering::Relaxed);
                let dir =
                    std::env::temp_dir().join(format!("ocr-net-stage-{}-{n}", std::process::id()));
                (dir, true)
            }
        };
        std::fs::create_dir_all(&stage).map_err(|e| ServeError::Io {
            path: stage.clone(),
            message: e.to_string(),
        })?;
        for name in NET_COUNTERS {
            ocr_obs::count(name, 0);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                buckets: HashMap::new(),
                streams: HashMap::new(),
            }),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            shed: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            submissions: AtomicU64::new(0),
            config,
            stage,
            obs: ocr_obs::current(),
            fault: ocr_fault::current(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ocr-net-accept".to_string())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| ServeError::Io {
                    path: PathBuf::from("ocr-net-accept"),
                    message: format!("spawn: {e}"),
                })?
        };
        Ok(NetIntake {
            shared,
            local,
            acceptor: Some(acceptor),
            awaiting: Vec::new(),
            own_stage,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting new work: in-flight submissions are still
    /// delivered and acknowledged, then [`crate::Intake::poll`]
    /// returns `None` and the engine drains. Used by the wire
    /// `shutdown` request and by [`PairedIntake`] when its spool half
    /// closes.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// Moves every queued submission into a batch, parking the ack
/// senders in `awaiting` until the engine acknowledges.
fn drain_pending(queue: &mut Queue, awaiting: &mut Vec<Sender<()>>) -> Vec<JobInput> {
    let mut batch = Vec::new();
    for pending in queue.pending.drain(..) {
        batch.push(pending.input);
        awaiting.push(pending.done);
    }
    batch
}

impl Intake for NetIntake {
    fn poll(&mut self, idle: bool) -> Option<Vec<JobInput>> {
        let mut queue = self.shared.lock();
        let batch = drain_pending(&mut queue, &mut self.awaiting);
        if !batch.is_empty() {
            return Some(batch);
        }
        if self.shared.closing() {
            return None;
        }
        if !idle {
            return Some(Vec::new());
        }
        // Idle: block until a submission arrives, the service starts
        // closing, or the poll interval elapses (so a co-intake — the
        // spool half of a PairedIntake — still gets its turn).
        let wait = Duration::from_millis(self.shared.config.poll_ms.max(1));
        let (mut queue, _) = self
            .shared
            .arrived
            .wait_timeout(queue, wait)
            .unwrap_or_else(|e| e.into_inner());
        let batch = drain_pending(&mut queue, &mut self.awaiting);
        if batch.is_empty() && self.shared.closing() {
            return None;
        }
        Some(batch)
    }

    fn ack(&mut self) {
        for done in self.awaiting.drain(..) {
            let _ = done.send(());
        }
    }

    fn budget_exhausted(&mut self) {
        self.shared.shed.store(true, Ordering::SeqCst);
    }
}

impl Drop for NetIntake {
    fn drop(&mut self) {
        // Order matters: close the queue under its lock first (no
        // handler can enqueue after this), then unblock every handler
        // — dropped senders answer `rejected … closed`, shut-down
        // sockets fail pending reads — then join the acceptor, which
        // joins its handlers.
        {
            let mut queue = self.shared.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            queue.pending.clear();
            for stream in queue.streams.values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        self.shared.arrived.notify_all();
        self.awaiting.clear();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if self.own_stage {
            let _ = std::fs::remove_dir_all(&self.shared.stage);
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let obs = shared.obs.clone();
    let fault = shared.fault.clone();
    ocr_obs::with_current(obs, || {
        ocr_fault::with_current(fault, || accept_loop_inner(listener, shared))
    });
}

fn accept_loop_inner(listener: TcpListener, shared: Arc<Shared>) {
    let nap = Duration::from_millis(25);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next_conn: u64 = 0;
    while !shared.closing() {
        handlers.retain(|h| !h.is_finished());
        if shared.conns.load(Ordering::SeqCst) >= shared.config.max_conns {
            // Backpressure: stop accepting; excess clients wait in the
            // kernel backlog until a handler slot frees up.
            std::thread::sleep(nap);
            continue;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if ocr_fault::point("net.accept") {
                    // Injected accept failure: the connection is
                    // dropped before any protocol exchange.
                    continue;
                }
                let conn = next_conn;
                next_conn += 1;
                shared.conns.fetch_add(1, Ordering::SeqCst);
                ocr_obs::count("net.conns", 1);
                if let Ok(clone) = stream.try_clone() {
                    shared.lock().streams.insert(conn, clone);
                }
                let shared2 = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("ocr-net-conn-{conn}"))
                    .spawn(move || {
                        let obs = shared2.obs.clone();
                        let fault = shared2.fault.clone();
                        ocr_obs::with_current(obs, || {
                            ocr_fault::with_current(fault, || {
                                // A panicking handler (injected fault,
                                // latent bug) loses its connection only
                                // — the daemon is never poisoned.
                                let caught =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        handle_connection(&stream, &shared2)
                                    }));
                                drop(caught);
                            })
                        });
                        shared2.lock().streams.remove(&conn);
                        shared2.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        shared.lock().streams.remove(&conn);
                        shared.conns.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(nap),
            Err(_) => std::thread::sleep(nap),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// A [`Read`] view of a connection that enforces a per-frame deadline:
/// the first byte may take until `deadline` (the idle allowance);
/// every subsequent read of the same frame must land within the I/O
/// timeout. Timeouts surface as `WouldBlock`/`TimedOut`, which the
/// wire layer maps to [`WireError::TimedOut`].
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    io_timeout: Duration,
    started: bool,
}

impl<'a> DeadlineStream<'a> {
    fn new(stream: &'a TcpStream, idle: Duration, io_timeout: Duration) -> DeadlineStream<'a> {
        DeadlineStream {
            stream,
            deadline: Instant::now() + idle,
            io_timeout,
            started: false,
        }
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if ocr_fault::point("net.read") {
            return Err(std::io::Error::other("injected net.read fault"));
        }
        let now = Instant::now();
        if now >= self.deadline {
            return Err(std::io::ErrorKind::TimedOut.into());
        }
        let remaining = self.deadline - now;
        self.stream.set_read_timeout(Some(remaining))?;
        let n = self.stream.read(buf)?;
        if n > 0 && !self.started {
            // The frame has started: the generous idle allowance is
            // spent, the rest must arrive at I/O pace.
            self.started = true;
            self.deadline = Instant::now() + self.io_timeout;
        }
        Ok(n)
    }
}

/// Writes one response frame, with the `net.write` fault site in
/// front.
fn send(stream: &TcpStream, response: &Response) -> Result<(), WireError> {
    if ocr_fault::point("net.write") {
        return Err(WireError::Io("injected net.write fault".to_string()));
    }
    let payload = response_payload(response);
    (&mut { stream })
        .write_all(&frame(&payload))
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
            _ => WireError::Io(e.to_string()),
        })
}

fn handle_connection(stream: &TcpStream, shared: &Shared) {
    let io_timeout = Duration::from_millis(shared.config.io_timeout_ms.max(1));
    let idle_timeout = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let _ = stream.set_write_timeout(Some(io_timeout));
    if write_magic(&mut { stream }).is_err() {
        return;
    }
    {
        let mut reader = DeadlineStream::new(stream, idle_timeout, io_timeout);
        if let Err(e) = read_magic(&mut reader) {
            let _ = send(
                stream,
                &Response::Error {
                    kind: e.kind().to_string(),
                    detail: e.to_string(),
                },
            );
            if e == WireError::TimedOut {
                ocr_obs::count("net.timeouts", 1);
            }
            return;
        }
    }
    loop {
        let mut reader = DeadlineStream::new(stream, idle_timeout, io_timeout);
        match read_frame(&mut reader, shared.config.max_frame) {
            Ok(None) => return, // clean disconnect between frames
            Err(WireError::TimedOut) => {
                // Slow loris: the frame never finished (or never
                // started) in time. Answer if the socket still can,
                // then close.
                ocr_obs::count("net.timeouts", 1);
                let _ = send(
                    stream,
                    &Response::Error {
                        kind: "timeout".to_string(),
                        detail: "frame deadline expired".to_string(),
                    },
                );
                return;
            }
            Err(e) => {
                // Torn, oversized, checksum-bad, malformed header:
                // typed rejection, then close — the stream position is
                // no longer trustworthy.
                let _ = send(
                    stream,
                    &Response::Error {
                        kind: e.kind().to_string(),
                        detail: e.to_string(),
                    },
                );
                return;
            }
            Ok(Some(payload)) => {
                // Mid-frame fault site: a plan can delay, fail, or
                // kill a handler with a received-but-unprocessed
                // frame.
                ocr_fault::point("net.frame");
                ocr_obs::count("net.frames", 1);
                let closing = match dispatch(&payload, stream, shared) {
                    Ok(closing) => closing,
                    Err(_) => return, // response write failed
                };
                if closing {
                    return;
                }
            }
        }
    }
}

/// Handles one well-framed payload; `Ok(true)` ends the connection.
fn dispatch(payload: &str, stream: &TcpStream, shared: &Shared) -> Result<bool, WireError> {
    match parse_request(payload) {
        Err(e) => {
            // The framing was intact — only this request is bad. The
            // connection stays usable.
            send(
                stream,
                &Response::Error {
                    kind: e.kind().to_string(),
                    detail: e.to_string(),
                },
            )?;
            Ok(false)
        }
        Ok(Request::Ping) => {
            send(stream, &Response::Pong)?;
            Ok(false)
        }
        Ok(Request::Shutdown) => {
            send(stream, &Response::Closing)?;
            shared.begin_shutdown();
            Ok(true)
        }
        Ok(Request::Submit(spec, chip_text)) => {
            let response = submit(spec, &chip_text, shared);
            send(stream, &response)?;
            Ok(false)
        }
    }
}

fn rejected(name: &str, reason: RejectReason, retry_after_ms: u64, detail: &str) -> Response {
    Response::Rejected {
        name: name.to_string(),
        reason,
        retry_after_ms,
        detail: detail.to_string(),
    }
}

/// Admission control and staging for one submission. Order: closed →
/// budget shed → tenant quota → queue capacity → stage + load →
/// enqueue → wait for the engine's durable ack.
fn submit(spec: ocr_io::job::JobSpec, chip_text: &str, shared: &Shared) -> Response {
    let name = spec.name.clone();
    let overload_retry = shared.config.poll_ms.max(100);
    {
        let mut queue = shared.lock();
        if shared.closing() {
            return rejected(&name, RejectReason::Closed, 0, "service is draining");
        }
        if shared.shed.load(Ordering::SeqCst) {
            ocr_obs::count("net.rejected.overload", 1);
            return rejected(
                &name,
                RejectReason::Overload,
                overload_retry,
                "global step budget exhausted",
            );
        }
        if let Some(quota) = &shared.config.quota {
            let tenant = spec.tenant.clone().unwrap_or_else(|| "-".to_string());
            let now = Instant::now();
            let bucket = queue.buckets.entry(tenant.clone()).or_insert(Bucket {
                milli: quota.burst.saturating_mul(1000),
                last: now,
            });
            if let Err(retry_after_ms) = bucket.take(quota, now) {
                ocr_obs::count("net.rejected.quota", 1);
                return rejected(
                    &name,
                    RejectReason::Quota,
                    retry_after_ms,
                    &format!("tenant {tenant} out of tokens"),
                );
            }
        }
        if queue.pending.len() >= shared.config.max_pending {
            ocr_obs::count("net.rejected.overload", 1);
            return rejected(
                &name,
                RejectReason::Overload,
                overload_retry,
                "submission queue full",
            );
        }
    }
    // Stage the chip durably, outside the lock (disk I/O), then load
    // it exactly as a spooled job would be.
    let n = shared.submissions.fetch_add(1, Ordering::SeqCst);
    let chip_file = format!("{n:06}-{name}.ocr");
    let mut spec = spec;
    spec.chip = chip_file.clone();
    if let Err(e) = ocr_io::atomic_write(&shared.stage.join(&chip_file), chip_text) {
        return Response::Error {
            kind: "io".to_string(),
            detail: format!("staging the chip failed: {e}"),
        };
    }
    let input = load_job(spec, &shared.stage);
    let (done, accepted): (Sender<()>, Receiver<()>) = std::sync::mpsc::channel();
    {
        let mut queue = shared.lock();
        // Re-check under the lock: the service may have started
        // closing or filled up while the chip was being staged.
        if shared.closing() {
            return rejected(&name, RejectReason::Closed, 0, "service is draining");
        }
        if queue.pending.len() >= shared.config.max_pending {
            ocr_obs::count("net.rejected.overload", 1);
            return rejected(
                &name,
                RejectReason::Overload,
                overload_retry,
                "submission queue full",
            );
        }
        queue.pending.push(Pending { input, done });
    }
    shared.arrived.notify_all();
    // Block until the engine journals and fsyncs the batch (ack) —
    // `accepted` is a durability promise. A dropped sender means the
    // service closed before the batch was accepted.
    match accepted.recv() {
        Ok(()) => Response::Accepted(name),
        Err(_) => rejected(
            &name,
            RejectReason::Closed,
            0,
            "service closed before the submission was accepted",
        ),
    }
}

/// A spool directory and a TCP listener feeding one engine: spool
/// batches first (scans never sleep — the net half paces the idle
/// loop), then network submissions. Either half closing closes the
/// whole intake: a spool `stop` sentinel (or `--drain`) shuts the
/// listener down, a wire `shutdown` triggers one final spool drain.
pub struct PairedIntake {
    spool: crate::SpoolIntake,
    net: NetIntake,
    spool_closed: bool,
    net_closed: bool,
}

impl PairedIntake {
    /// Pairs the two intakes.
    pub fn new(spool: crate::SpoolIntake, net: NetIntake) -> PairedIntake {
        PairedIntake {
            spool,
            net,
            spool_closed: false,
            net_closed: false,
        }
    }

    /// The bound address of the network half.
    pub fn local_addr(&self) -> SocketAddr {
        self.net.local_addr()
    }

    /// The first spool error that closed the spool half, if any.
    pub fn take_error(&mut self) -> Option<ServeError> {
        self.spool.take_error()
    }
}

impl Intake for PairedIntake {
    fn poll(&mut self, idle: bool) -> Option<Vec<JobInput>> {
        let mut batch = Vec::new();
        if !self.spool_closed {
            // Never let the spool sleep: the net half's bounded
            // condvar wait is the pacing for the whole pair.
            match self.spool.poll(false) {
                None => {
                    self.spool_closed = true;
                    self.net.begin_shutdown();
                }
                Some(jobs) => batch.extend(jobs),
            }
        }
        if !self.net_closed {
            match self.net.poll(idle && batch.is_empty()) {
                None => {
                    self.net_closed = true;
                    if !self.spool_closed {
                        // One final spool drain so files that raced
                        // the shutdown are still served, then close.
                        if let Some(jobs) = self.spool.poll(false) {
                            batch.extend(jobs);
                        }
                        self.spool_closed = true;
                    }
                }
                Some(jobs) => batch.extend(jobs),
            }
        }
        if self.spool_closed && self.net_closed && batch.is_empty() {
            return None;
        }
        Some(batch)
    }

    fn ack(&mut self) {
        self.spool.ack();
        self.net.ack();
    }

    fn budget_exhausted(&mut self) {
        self.spool.budget_exhausted();
        self.net.budget_exhausted();
    }
}

/// Connects to a front-end and performs the magic exchange. The
/// returned stream has `timeout` installed for reads and writes.
///
/// # Errors
///
/// [`WireError`] when the connection or the magic exchange fails.
pub fn client_connect(addr: &str, timeout: Duration) -> Result<TcpStream, WireError> {
    let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(format!("connect: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| WireError::Io(format!("set timeout: {e}")))?;
    write_magic(&mut (&stream))?;
    read_magic(&mut (&stream))?;
    Ok(stream)
}

/// Sends one request payload and reads the response frame.
///
/// # Errors
///
/// [`WireError`] on a transport failure or a malformed response.
pub fn client_request(stream: &TcpStream, payload: &str) -> Result<Response, WireError> {
    ocr_io::wire::write_frame(&mut { stream }, payload)?;
    match read_frame(&mut { stream }, ocr_io::wire::DEFAULT_MAX_FRAME)? {
        Some(response) => ocr_io::wire::parse_response(&response),
        None => Err(WireError::Torn(
            "connection closed before the response".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_burst_then_rate() {
        let quota = QuotaConfig {
            rate_per_sec: 0,
            burst: 2,
        };
        let t0 = Instant::now();
        let mut bucket = Bucket {
            milli: quota.burst * 1000,
            last: t0,
        };
        assert!(bucket.take(&quota, t0).is_ok());
        assert!(bucket.take(&quota, t0).is_ok());
        // Rate 0 never refills: the third take fails forever.
        assert_eq!(bucket.take(&quota, t0), Err(60_000));
        assert_eq!(
            bucket.take(&quota, t0 + Duration::from_secs(3600)),
            Err(60_000)
        );
    }

    #[test]
    fn bucket_refills_at_the_configured_rate() {
        let quota = QuotaConfig {
            rate_per_sec: 10,
            burst: 1,
        };
        let t0 = Instant::now();
        let mut bucket = Bucket {
            milli: 1000,
            last: t0,
        };
        assert!(bucket.take(&quota, t0).is_ok());
        // Empty: a full token takes 100ms at 10/s.
        assert_eq!(bucket.take(&quota, t0), Err(100));
        assert!(bucket.take(&quota, t0 + Duration::from_millis(100)).is_ok());
        // The bucket never exceeds its burst even after a long sleep.
        let mut bucket = Bucket { milli: 0, last: t0 };
        let _ = bucket.take(&quota, t0 + Duration::from_secs(100));
        assert!(bucket.milli <= 1000, "{}", bucket.milli);
    }
}
