//! The service's write-ahead job journal: typed job state-transition
//! events over `ocr-journal-v1` framing ([`ocr_io::journal`]), an
//! append-and-fsync writer, and the tolerant replay that rebuilds the
//! scheduler's view of every accepted job after a crash.
//!
//! One payload per record; `<seq>` is the engine's submission index,
//! which names jobs stably across duplicate names:
//!
//! ```text
//! accept <seq> <name> <chip|-> [flow F] [order O] [priority P]
//!        [max-steps N] [salvage] [verify] [tenant T]
//! base <seq> <path to end of line>
//! start <seq>
//! preempt <seq> steps <n> preempts <k> ckpt <path to end of line>
//! end <seq> <status> steps <n> routed <n> degraded <n> preempts <n>
//!     [detail <text to end of line>]
//! ```
//!
//! `accept` is written (and the journal fsynced) before the intake
//! acknowledges a submission, so an accepted job can never be lost:
//! either the spool file still exists on restart, or the journal
//! already names the job. `end` is written after the job's answer
//! files, so a journaled terminal status always has its answers on
//! disk — recovery double-checks and re-runs the job when they are
//! missing. Events replay in order with last-one-wins semantics (a
//! job whose stale terminal record was distrusted legitimately ends
//! again after its re-run).

use crate::ServeError;
use ocr_io::job::{JobRecord, JobSpec, STATUS_TOKENS};
use ocr_io::journal::{frame_record, replay_journal, JOURNAL_MAGIC};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Everything the journal knows about one accepted job after replay.
pub(crate) struct RecoveredJob {
    /// The accepted spec, reconstructed from its `accept` record.
    pub spec: JobSpec,
    /// Directory the chip path resolves against, when the submission
    /// had one (spool or manifest). `None` means the chip cannot be
    /// reloaded from disk; the job waits for redelivery.
    pub base: Option<PathBuf>,
    /// Steps charged up to the last journaled preemption.
    pub steps: u64,
    /// Preemptions journaled so far.
    pub preempts: u64,
    /// Checkpoint path from the last `preempt` record.
    pub ckpt: Option<PathBuf>,
    /// The terminal record, when the job already ended.
    pub end: Option<JobRecord>,
}

/// The append side of the job journal. Appends are atomic per record:
/// every attempt first truncates back to the committed length, so a
/// torn append never survives into the next record.
pub(crate) struct JobJournal {
    path: PathBuf,
    file: std::fs::File,
    len: u64,
}

impl JobJournal {
    /// Opens (or creates) `dir/serve.journal`, replays it tolerantly,
    /// and truncates any torn or checksum-bad tail so appends extend
    /// the valid prefix. Returns the writer, the recovered jobs in
    /// submission order, and human-readable warnings for anything the
    /// replay had to drop or skip.
    pub fn open(dir: &Path) -> Result<(JobJournal, Vec<RecoveredJob>, Vec<String>), ServeError> {
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |e: std::io::Error| ServeError::Io {
                path,
                message: e.to_string(),
            }
        };
        std::fs::create_dir_all(dir).map_err(io_err(dir))?;
        let path = dir.join("serve.journal");
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&path)(e)),
        };
        let replay = replay_journal(&bytes);
        let mut warnings: Vec<String> = Vec::new();
        if let Some(w) = &replay.warning {
            warnings.push(format!("journal: {w}; dropping the damaged tail"));
        }
        ocr_obs::count("journal.replayed", replay.records.len() as u64);
        // Declare the durability counters up front so a service stats
        // document always carries them, even at zero.
        ocr_obs::count("journal.append", 0);
        ocr_obs::count("recover.jobs_resumed", 0);
        ocr_obs::count("io.retries", 0);
        let (jobs, mut event_warnings) = rebuild(&replay.records);
        warnings.append(&mut event_warnings);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(io_err(&path))?;
        let mut len = replay.valid_len;
        file.set_len(len).map_err(io_err(&path))?;
        if len == 0 {
            // Fresh (or unusable) journal: start over with the magic.
            let magic = format!("{JOURNAL_MAGIC}\n");
            file.write_all(magic.as_bytes()).map_err(io_err(&path))?;
            len = magic.len() as u64;
        }
        file.sync_data().map_err(io_err(&path))?;
        Ok((JobJournal { path, file, len }, jobs, warnings))
    }

    /// Appends one framed record. Each attempt truncates back to the
    /// committed length first, so a torn write from a previous attempt
    /// (or the `journal.append` fault) never survives. Not fsynced —
    /// call [`JobJournal::sync`] at the commit boundary.
    fn append(&mut self, payload: &str) -> Result<(), ServeError> {
        let line = frame_record(payload);
        let result = ocr_io::retry_io(|| {
            self.file.set_len(self.len)?;
            self.file.seek(SeekFrom::Start(self.len))?;
            if ocr_fault::point("journal.append") {
                // Simulate a torn append: half the record lands, then
                // the device reports an error.
                let _ = self.file.write_all(&line.as_bytes()[..line.len() / 2]);
                return Err(std::io::Error::other("injected torn write"));
            }
            self.file.write_all(line.as_bytes())
        });
        match result {
            Ok(()) => {
                self.len += line.len() as u64;
                ocr_obs::count("journal.append", 1);
                Ok(())
            }
            Err(e) => Err(ServeError::Io {
                path: self.path.clone(),
                message: e.to_string(),
            }),
        }
    }

    /// Fsyncs the journal — the commit boundary for everything
    /// appended since the last sync.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file.sync_data().map_err(|e| ServeError::Io {
            path: self.path.clone(),
            message: e.to_string(),
        })
    }

    /// Journals an accepted submission (and its reload base, if any).
    pub fn accept(
        &mut self,
        seq: usize,
        spec: &JobSpec,
        base: Option<&Path>,
    ) -> Result<(), ServeError> {
        let mut p = format!("accept {seq} {} {}", token(&spec.name), token(&spec.chip));
        if spec.flow != "overcell" {
            p.push_str(&format!(" flow {}", token(&spec.flow)));
        }
        if let Some(order) = &spec.order {
            p.push_str(&format!(" order {}", token(order)));
        }
        if spec.priority != 0 {
            p.push_str(&format!(" priority {}", spec.priority));
        }
        if let Some(steps) = spec.max_steps {
            p.push_str(&format!(" max-steps {steps}"));
        }
        if spec.salvage {
            p.push_str(" salvage");
        }
        if spec.verify {
            p.push_str(" verify");
        }
        if let Some(tenant) = &spec.tenant {
            p.push_str(&format!(" tenant {}", token(tenant)));
        }
        self.append(&p)?;
        if let Some(base) = base {
            self.append(&format!("base {seq} {}", base.display()))?;
        }
        Ok(())
    }

    /// Journals a job's first admission onto the pool.
    pub fn start(&mut self, seq: usize) -> Result<(), ServeError> {
        self.append(&format!("start {seq}"))
    }

    /// Journals a preemption: cumulative steps, preempt count, and the
    /// checkpoint the next slice resumes from.
    pub fn preempt(
        &mut self,
        seq: usize,
        steps: u64,
        preempts: u64,
        ckpt: &Path,
    ) -> Result<(), ServeError> {
        self.append(&format!(
            "preempt {seq} steps {steps} preempts {preempts} ckpt {}",
            ckpt.display()
        ))
    }

    /// Journals a terminal record (written after the answer files).
    pub fn end(&mut self, seq: usize, record: &JobRecord) -> Result<(), ServeError> {
        let mut p = format!(
            "end {seq} {} steps {} routed {} degraded {} preempts {}",
            record.status, record.steps, record.routed, record.degraded, record.preempts
        );
        if !record.detail.is_empty() {
            p.push_str(&format!(" detail {}", record.detail));
        }
        self.append(&p)
    }
}

/// Whitespace would shift the event grammar's token positions, so
/// names and chips are journaled with it collapsed. (Specs from spool
/// or manifest files are token-clean already; only embedded API
/// submissions can carry spaces, and those cannot be reloaded from
/// disk anyway.) An empty field journals as `-`.
fn token(s: &str) -> String {
    if s.is_empty() {
        return "-".to_string();
    }
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

fn untoken(s: &str) -> String {
    if s == "-" {
        String::new()
    } else {
        s.to_string()
    }
}

/// The payload text after its first `n` whitespace-separated tokens —
/// free-text tail fields (paths, details) keep their internal spacing.
fn after_tokens(payload: &str, n: usize) -> Option<&str> {
    let mut rest = payload.trim_start();
    for _ in 0..n {
        let idx = rest.find(char::is_whitespace)?;
        rest = rest[idx..].trim_start();
    }
    Some(rest)
}

fn rebuild(records: &[(usize, String)]) -> (Vec<RecoveredJob>, Vec<String>) {
    let mut jobs: Vec<RecoveredJob> = Vec::new();
    let mut warnings = Vec::new();
    for (line, payload) in records {
        if let Err(message) = apply(&mut jobs, payload) {
            warnings.push(format!("journal: line {line}: {message}; record skipped"));
        }
    }
    (jobs, warnings)
}

/// Applies one well-framed event to the recovered-job list. Events
/// replay in order; a later record overrides an earlier one (a
/// distrusted terminal job can legitimately preempt and end again).
fn apply(jobs: &mut Vec<RecoveredJob>, payload: &str) -> Result<(), String> {
    let mut tokens = payload.split_whitespace();
    let kind = tokens.next().ok_or("empty record")?;
    let seq: usize = tokens
        .next()
        .ok_or("missing seq")?
        .parse()
        .map_err(|e| format!("bad seq: {e}"))?;
    match kind {
        "accept" => {
            if seq != jobs.len() {
                return Err(format!(
                    "accept out of order (seq {seq}, expected {})",
                    jobs.len()
                ));
            }
            let name = tokens.next().ok_or("accept: missing name")?;
            let chip = tokens.next().ok_or("accept: missing chip")?;
            let mut spec = JobSpec::new(untoken(name), untoken(chip));
            while let Some(option) = tokens.next() {
                let mut value = |what: &str| {
                    tokens
                        .next()
                        .map(str::to_string)
                        .ok_or(format!("accept: {what} needs a value"))
                };
                match option {
                    "flow" => spec.flow = value("flow")?,
                    "order" => spec.order = Some(value("order")?),
                    "priority" => {
                        spec.priority = value("priority")?
                            .parse()
                            .map_err(|e| format!("accept: bad priority: {e}"))?;
                    }
                    "max-steps" => {
                        spec.max_steps = Some(
                            value("max-steps")?
                                .parse()
                                .map_err(|e| format!("accept: bad max-steps: {e}"))?,
                        );
                    }
                    "salvage" => spec.salvage = true,
                    "verify" => spec.verify = true,
                    "tenant" => spec.tenant = Some(value("tenant")?),
                    other => return Err(format!("accept: unknown option `{other}`")),
                }
            }
            jobs.push(RecoveredJob {
                spec,
                base: None,
                steps: 0,
                preempts: 0,
                ckpt: None,
                end: None,
            });
        }
        "base" => {
            let job = jobs
                .get_mut(seq)
                .ok_or(format!("base: unknown seq {seq}"))?;
            let path = after_tokens(payload, 2).filter(|p| !p.is_empty());
            job.base = path.map(PathBuf::from);
            if job.base.is_none() {
                return Err("base: missing path".to_string());
            }
        }
        "start" => {
            // Informational: admission restores no state beyond what
            // `accept`/`preempt` carry, but an unknown seq is damage.
            jobs.get(seq).ok_or(format!("start: unknown seq {seq}"))?;
        }
        "preempt" => {
            let fields: Vec<&str> = tokens.collect();
            let expect = |idx: usize, key: &str| -> Result<&str, String> {
                match (fields.get(idx), fields.get(idx + 1)) {
                    (Some(&k), Some(&v)) if k == key => Ok(v),
                    _ => Err(format!("preempt: missing `{key}`")),
                }
            };
            let steps: u64 = expect(0, "steps")?
                .parse()
                .map_err(|e| format!("preempt: bad steps: {e}"))?;
            let preempts: u64 = expect(2, "preempts")?
                .parse()
                .map_err(|e| format!("preempt: bad preempts: {e}"))?;
            expect(4, "ckpt")?;
            let ckpt = after_tokens(payload, 7)
                .filter(|p| !p.is_empty())
                .ok_or("preempt: missing checkpoint path")?;
            let job = jobs
                .get_mut(seq)
                .ok_or(format!("preempt: unknown seq {seq}"))?;
            job.steps = steps;
            job.preempts = preempts;
            job.ckpt = Some(PathBuf::from(ckpt));
        }
        "end" => {
            let status = tokens.next().ok_or("end: missing status")?;
            if !STATUS_TOKENS.contains(&status) {
                return Err(format!("end: unknown status `{status}`"));
            }
            let fields: Vec<&str> = tokens.collect();
            let expect = |idx: usize, key: &str| -> Result<u64, String> {
                match (fields.get(idx), fields.get(idx + 1)) {
                    (Some(&k), Some(&v)) if k == key => {
                        v.parse().map_err(|e| format!("end: bad {key}: {e}"))
                    }
                    _ => Err(format!("end: missing `{key}`")),
                }
            };
            let steps = expect(0, "steps")?;
            let routed = expect(2, "routed")?;
            let degraded = expect(4, "degraded")?;
            let preempts = expect(6, "preempts")?;
            let detail = match fields.get(8) {
                Some(&"detail") => after_tokens(payload, 12).unwrap_or("").to_string(),
                Some(other) => return Err(format!("end: unexpected field `{other}`")),
                None => String::new(),
            };
            let job = jobs.get_mut(seq).ok_or(format!("end: unknown seq {seq}"))?;
            job.end = Some(JobRecord {
                name: job.spec.name.clone(),
                status: status.to_string(),
                steps,
                routed,
                degraded,
                preempts,
                detail,
            });
        }
        other => return Err(format!("unknown event `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ocr-sjournal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn events_round_trip_through_a_reopen() {
        let dir = scratch("roundtrip");
        let (mut journal, jobs, warnings) = JobJournal::open(&dir).expect("open");
        assert!(jobs.is_empty());
        assert!(warnings.is_empty());
        let mut spec = JobSpec::new("alpha", "alpha.ocr");
        spec.priority = 3;
        spec.max_steps = Some(500);
        spec.salvage = true;
        journal
            .accept(0, &spec, Some(Path::new("/tmp/spool dir")))
            .expect("accept");
        journal.start(0).expect("start");
        journal
            .preempt(0, 128, 1, Path::new("/tmp/out/alpha/job.ckpt"))
            .expect("preempt");
        journal
            .accept(1, &JobSpec::new("beta", "beta.ocr"), None)
            .expect("accept");
        journal
            .end(
                1,
                &JobRecord {
                    name: "beta".into(),
                    status: "failed".into(),
                    steps: 7,
                    routed: 0,
                    degraded: 0,
                    preempts: 0,
                    detail: "poisoned: fault injected at serve.job.beta".into(),
                },
            )
            .expect("end");
        journal.sync().expect("sync");
        drop(journal);

        let (_journal, jobs, warnings) = JobJournal::open(&dir).expect("reopen");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].spec, spec);
        assert_eq!(jobs[0].base.as_deref(), Some(Path::new("/tmp/spool dir")));
        assert_eq!(jobs[0].steps, 128);
        assert_eq!(jobs[0].preempts, 1);
        assert_eq!(
            jobs[0].ckpt.as_deref(),
            Some(Path::new("/tmp/out/alpha/job.ckpt"))
        );
        assert!(jobs[0].end.is_none());
        let end = jobs[1].end.as_ref().expect("beta ended");
        assert_eq!(end.status, "failed");
        assert_eq!(end.steps, 7);
        assert_eq!(end.detail, "poisoned: fault injected at serve.job.beta");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch("torn");
        let (mut journal, _, _) = JobJournal::open(&dir).expect("open");
        journal
            .accept(0, &JobSpec::new("alpha", "alpha.ocr"), None)
            .expect("accept");
        journal.sync().expect("sync");
        drop(journal);
        let path = dir.join("serve.journal");
        let mut bytes = std::fs::read(&path).expect("read");
        let good_len = bytes.len();
        bytes.extend_from_slice(b"r 20 0123456789abcdef torn");
        std::fs::write(&path, &bytes).expect("tear");

        let (mut journal, jobs, warnings) = JobJournal::open(&dir).expect("reopen");
        assert_eq!(jobs.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("torn"), "{warnings:?}");
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            good_len as u64,
            "the damaged tail is truncated on open"
        );
        journal.start(0).expect("append after heal");
        drop(journal);
        let (_, jobs, warnings) = JobJournal::open(&dir).expect("reopen");
        assert_eq!(jobs.len(), 1);
        assert!(warnings.is_empty(), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_events_warn_but_do_not_stop_replay() {
        let dir = scratch("unknown");
        let path = dir.join("serve.journal");
        let mut text = format!("{JOURNAL_MAGIC}\n");
        text.push_str(&frame_record("accept 0 alpha alpha.ocr"));
        text.push_str(&frame_record("vacuum 0 full"));
        text.push_str(&frame_record("accept 1 beta beta.ocr"));
        std::fs::write(&path, text).expect("write");
        let (_, jobs, warnings) = JobJournal::open(&dir).expect("open");
        assert_eq!(jobs.len(), 2, "good records around the bad one apply");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("vacuum"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_journal_with_wrong_magic_resets_with_a_warning() {
        let dir = scratch("magic");
        let path = dir.join("serve.journal");
        std::fs::write(&path, "ocr-results-v1\nalpha done\n").expect("write");
        let (mut journal, jobs, warnings) = JobJournal::open(&dir).expect("open");
        assert!(jobs.is_empty());
        assert_eq!(warnings.len(), 1);
        journal
            .accept(0, &JobSpec::new("alpha", "alpha.ocr"), None)
            .expect("accept after reset");
        drop(journal);
        let (_, jobs, warnings) = JobJournal::open(&dir).expect("reopen");
        assert_eq!(jobs.len(), 1);
        assert!(warnings.is_empty(), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_append_is_retried_and_heals() {
        let dir = scratch("fault");
        let plan = ocr_fault::plan(5).fire_at("journal.append", 1.0, 1).build();
        let collector = ocr_obs::Collector::new();
        ocr_obs::with_collector(&collector, || {
            ocr_fault::with_plan(&plan, || {
                let (mut journal, _, _) = JobJournal::open(&dir).expect("open");
                journal
                    .accept(0, &JobSpec::new("alpha", "alpha.ocr"), None)
                    .expect("append retries past the torn write");
                journal.sync().expect("sync");
            });
        });
        let telemetry = collector.snapshot();
        assert!(
            telemetry.counter("io.retries").unwrap_or(0) >= 1,
            "the retry is counted"
        );
        let (_, jobs, warnings) = JobJournal::open(&dir).expect("reopen");
        assert_eq!(jobs.len(), 1, "the healed record replays");
        assert!(warnings.is_empty(), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_end_record_overrides_the_first() {
        let dir = scratch("reend");
        let path = dir.join("serve.journal");
        let mut text = format!("{JOURNAL_MAGIC}\n");
        text.push_str(&frame_record("accept 0 alpha alpha.ocr"));
        text.push_str(&frame_record(
            "end 0 failed steps 5 routed 0 degraded 0 preempts 0",
        ));
        text.push_str(&frame_record(
            "end 0 done steps 41 routed 6 degraded 0 preempts 1",
        ));
        std::fs::write(&path, text).expect("write");
        let (_, jobs, warnings) = JobJournal::open(&dir).expect("open");
        assert!(warnings.is_empty(), "{warnings:?}");
        let end = jobs[0].end.as_ref().expect("ended");
        assert_eq!(end.status, "done");
        assert_eq!(end.steps, 41);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
