//! Job intake: resolving submitted specs into runnable [`JobInput`]s,
//! reading `ocr-jobs-v1` manifests, and watching a spool directory.
//!
//! The spool protocol is deliberately plain: drop an `ocr-jobs-v1`
//! document named `*.job` into the directory and the service consumes
//! (deletes) it. Files are picked up in filename order, so a scan is
//! deterministic for a fixed set of files. A file named `stop` closes
//! the intake: the service drains its queue and exits.

use crate::{JobInput, LoadedChip, ServeError};
use ocr_core::{ordering_from_name, FlowKind};
use ocr_io::ckpt::fnv1a_64;
use ocr_io::job::{parse_jobs, valid_job_name, JobSpec};
use ocr_io::{parse_chip, write_chip};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Resolves a submitted spec into a [`JobInput`]: parses and audits the
/// chip (relative paths resolve against `base`) and binds the flow
/// kind. Every failure becomes an `Err` load — the scheduler answers it
/// as `rejected` rather than dropping the submission.
pub fn load_job(spec: JobSpec, base: &Path) -> JobInput {
    let load = resolve(&spec, base);
    JobInput {
        spec,
        load,
        base: Some(base.to_path_buf()),
    }
}

fn resolve(spec: &JobSpec, base: &Path) -> Result<LoadedChip, String> {
    let kind =
        FlowKind::from_name(&spec.flow).ok_or_else(|| format!("unknown flow `{}`", spec.flow))?;
    let ordering = match &spec.order {
        Some(name) => {
            // The racer manages its own controls, which cannot compose
            // with the scheduler's slice budgets — so no `portfolio`
            // here; it falls out naturally as an unknown name.
            let ordering =
                ordering_from_name(name).ok_or_else(|| format!("unknown ordering `{name}`"))?;
            if kind != FlowKind::OverCell {
                return Err(format!(
                    "ordering `{name}` applies to the overcell flow, not `{}`",
                    spec.flow
                ));
            }
            Some(ordering)
        }
        None => None,
    };
    let path = base.join(&spec.chip);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (layout, placement) = parse_chip(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let problems = layout.audit();
    if !problems.is_empty() {
        return Err(format!(
            "{}: layout audit failed: {}",
            path.display(),
            problems.join("; ")
        ));
    }
    let problems = placement.audit(&layout);
    if !problems.is_empty() {
        return Err(format!(
            "{}: placement audit failed: {}",
            path.display(),
            problems.join("; ")
        ));
    }
    // Fingerprint the canonical re-serialization, exactly as `ocr
    // route --checkpoint` does, so service checkpoints and standalone
    // checkpoints agree on the chip hash.
    let chip_hash = fnv1a_64(&write_chip(&layout, &placement));
    Ok(LoadedChip {
        kind,
        ordering,
        layout,
        placement,
        chip_hash,
    })
}

/// Reads an `ocr-jobs-v1` manifest and resolves every spec (chip paths
/// relative to the manifest's directory).
///
/// # Errors
///
/// [`ServeError::Io`] when the manifest itself is unreadable or
/// malformed; individual chips that fail to load are per-job
/// rejections, not errors.
pub fn manifest_jobs(path: &Path) -> Result<Vec<JobInput>, ServeError> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let specs = parse_jobs(&text).map_err(|e| ServeError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let base = path.parent().unwrap_or(Path::new(".")).to_path_buf();
    Ok(specs.into_iter().map(|s| load_job(s, &base)).collect())
}

/// One scan of a spool directory: consumes every `*.job` file in
/// filename order and resolves the jobs it carries (chip paths relative
/// to the spool directory). A malformed job file becomes a single
/// rejected pseudo-job named after the file, so nothing is silently
/// swallowed. Returns the resolved batch.
///
/// # Errors
///
/// [`ServeError::Io`] when the directory itself cannot be read.
pub fn scan_spool(dir: &Path) -> Result<Vec<JobInput>, ServeError> {
    let mut sticky = BTreeSet::new();
    let (mut jobs, files) = scan_spool_collect(dir, &sticky)?;
    jobs.extend(consume_files(&files, &mut sticky));
    Ok(jobs)
}

/// The read half of a spool scan: resolves the jobs of every `*.job`
/// file not recorded in `sticky`, *without* deleting anything, and
/// returns the scanned files alongside the batch. Deletion is deferred
/// to [`consume_files`] so a crash-safe engine can journal the batch
/// first — a crash between scan and consume redelivers the files
/// instead of losing them.
fn scan_spool_collect(
    dir: &Path,
    sticky: &BTreeSet<PathBuf>,
) -> Result<(Vec<JobInput>, Vec<PathBuf>), ServeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| ServeError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "job"))
        .filter(|p| !sticky.contains(p))
        .collect();
    files.sort();
    let mut jobs = Vec::new();
    for file in &files {
        let batch = std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_jobs(&text).map_err(|e| e.to_string()));
        match batch {
            Ok(specs) => {
                jobs.extend(specs.into_iter().map(|s| load_job(s, dir)));
            }
            Err(message) => {
                // The pseudo-job's name must survive the results-file
                // round trip, so an invalid stem (`.x.job`, `a b.job`)
                // falls back like a non-UTF-8 one.
                let stem = file
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .filter(|s| valid_job_name(s))
                    .unwrap_or("malformed");
                jobs.push(JobInput {
                    spec: JobSpec::new(stem, ""),
                    load: Err(format!("{}: {message}", file.display())),
                    base: None,
                });
            }
        }
    }
    Ok((jobs, files))
}

/// The delete half of a spool scan: consumes the scanned files so their
/// jobs run exactly once. A file that cannot be removed is remembered
/// in `sticky` — skipped by later scans instead of resubmitting its
/// jobs forever — and surfaced as a rejected pseudo-job.
fn consume_files(files: &[PathBuf], sticky: &mut BTreeSet<PathBuf>) -> Vec<JobInput> {
    let mut failures = Vec::new();
    for file in files {
        if let Err(e) = std::fs::remove_file(file) {
            failures.push(JobInput {
                spec: JobSpec::new("spool-remove-failed", ""),
                load: Err(format!("{}: cannot consume: {e}", file.display())),
                base: None,
            });
            sticky.insert(file.clone());
        }
    }
    failures
}

/// A spool-directory [`crate::Intake`]: polls the directory for `*.job`
/// files, sleeping between scans only while the engine is idle. Closes
/// when a `stop` sentinel file appears (consumed) or — in drain mode —
/// after the first scan.
pub struct SpoolIntake {
    dir: PathBuf,
    poll: std::time::Duration,
    drain: bool,
    scanned: bool,
    closing: bool,
    sticky: BTreeSet<PathBuf>,
    /// Files delivered by the last scan but not yet acknowledged —
    /// still on disk, so a crash before the engine journals the batch
    /// redelivers them on restart.
    pending: Vec<PathBuf>,
    /// Consume failures discovered at acknowledge time, delivered as
    /// rejected pseudo-jobs with the next batch.
    consume_failures: Vec<JobInput>,
    error: Option<ServeError>,
}

impl SpoolIntake {
    /// Watches `dir`, sleeping `poll_ms` between idle scans. With
    /// `drain`, performs a single scan and closes.
    pub fn new(dir: &Path, poll_ms: u64, drain: bool) -> SpoolIntake {
        SpoolIntake {
            dir: dir.to_path_buf(),
            poll: std::time::Duration::from_millis(poll_ms.max(1)),
            drain,
            scanned: false,
            closing: false,
            sticky: BTreeSet::new(),
            pending: Vec::new(),
            consume_failures: Vec::new(),
            error: None,
        }
    }

    /// The first directory-read error that closed the intake, if any.
    pub fn take_error(&mut self) -> Option<ServeError> {
        self.error.take()
    }
}

impl crate::Intake for SpoolIntake {
    fn poll(&mut self, idle: bool) -> Option<Vec<JobInput>> {
        if self.closing || (self.drain && self.scanned) {
            return None;
        }
        // A caller that never acknowledges (direct polling, no
        // journal) still consumes each batch before the next scan, so
        // a rescan cannot resubmit delivered jobs.
        self.ack();
        if self.scanned && idle {
            // Nothing queued and nothing new last time: sleep before
            // rescanning instead of spinning on the directory — but in
            // short slices, watching for the stop sentinel, so a
            // shutdown request never waits out a long poll interval.
            let mut remaining = self.poll;
            let slice = std::time::Duration::from_millis(20);
            while !remaining.is_zero() {
                if self.dir.join("stop").exists() {
                    break;
                }
                let nap = remaining.min(slice);
                std::thread::sleep(nap);
                remaining = remaining.saturating_sub(nap);
            }
        }
        let stop = self.dir.join("stop");
        let stopping = stop.exists();
        let (scanned, files) = match scan_spool_collect(&self.dir, &self.sticky) {
            Ok(scan) => scan,
            Err(e) => {
                // The spool went away: close the intake so the engine
                // drains and reports, instead of erroring mid-flight.
                self.error = Some(e);
                return None;
            }
        };
        self.pending = files;
        let mut batch = std::mem::take(&mut self.consume_failures);
        batch.extend(scanned);
        self.scanned = true;
        if stopping {
            // The sentinel is consumed now, so the decision to close
            // must outlive this call: deliver any jobs scanned alongside
            // it, then close on the next poll.
            let _ = std::fs::remove_file(&stop);
            self.closing = true;
            if batch.is_empty() {
                // Nothing to deliver and no poll will follow: consume
                // what the final scan picked up (e.g. empty job files).
                self.ack();
                return None;
            }
        }
        Some(batch)
    }

    fn ack(&mut self) {
        let files = std::mem::take(&mut self.pending);
        let mut failures = consume_files(&files, &mut self.sticky);
        self.consume_failures.append(&mut failures);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocr_io::job::write_jobs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ocr-intake-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn load_job_rejects_unknown_flow_and_missing_chip() {
        let dir = scratch("load");
        let mut spec = JobSpec::new("a", "missing.ocr");
        spec.flow = "warp".into();
        let input = load_job(spec, &dir);
        assert!(input.load.unwrap_err().contains("unknown flow"));
        let input = load_job(JobSpec::new("b", "missing.ocr"), &dir);
        assert!(input.load.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_job_validates_the_order_option() {
        let dir = scratch("order");
        let chip = ocr_gen::random::small_random(4, 2, 3, 8, 7);
        std::fs::write(
            dir.join("chip.ocr"),
            write_chip(&chip.layout, &chip.placement),
        )
        .expect("chip");
        let mut spec = JobSpec::new("a", "chip.ocr");
        spec.order = Some("criticality".into());
        let input = load_job(spec, &dir);
        let loaded = input.load.expect("valid ordering loads");
        assert_eq!(
            loaded.ordering.as_ref().map(|o| o.name()),
            Some("criticality".to_string())
        );
        let mut spec = JobSpec::new("b", "chip.ocr");
        spec.order = Some("portfolio".into());
        let input = load_job(spec, &dir);
        assert!(
            input.load.unwrap_err().contains("unknown ordering"),
            "portfolio needs its own controls: rejected as unknown"
        );
        let mut spec = JobSpec::new("c", "chip.ocr");
        spec.flow = "channel2".into();
        spec.order = Some("longest".into());
        let input = load_job(spec, &dir);
        assert!(input
            .load
            .unwrap_err()
            .contains("applies to the overcell flow"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spool_scan_consumes_files_in_name_order() {
        let dir = scratch("scan");
        let chip = ocr_gen::random::small_random(4, 2, 3, 8, 7);
        let text = write_chip(&chip.layout, &chip.placement);
        std::fs::write(dir.join("chip.ocr"), &text).expect("chip");
        std::fs::write(
            dir.join("b.job"),
            write_jobs(&[JobSpec::new("beta", "chip.ocr")]),
        )
        .expect("job");
        std::fs::write(
            dir.join("a.job"),
            write_jobs(&[JobSpec::new("alpha", "chip.ocr")]),
        )
        .expect("job");
        std::fs::write(dir.join("notes.txt"), "ignored").expect("stray");
        let jobs = scan_spool(&dir).expect("scan");
        let names: Vec<&str> = jobs.iter().map(|j| j.spec.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"], "filename order, .job only");
        assert!(jobs.iter().all(|j| j.load.is_ok()));
        assert!(!dir.join("a.job").exists(), "job files are consumed");
        assert!(dir.join("notes.txt").exists(), "strays are left alone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_spool_file_becomes_a_rejection() {
        let dir = scratch("bad");
        std::fs::write(dir.join("x.job"), "not a jobs file").expect("job");
        // A stem that is not a valid job name must not leak into the
        // pseudo-job (it would poison the service's results file).
        std::fs::write(dir.join(".x.job"), "not a jobs file").expect("job");
        let jobs = scan_spool(&dir).expect("scan");
        let names: Vec<&str> = jobs.iter().map(|j| j.spec.name.as_str()).collect();
        assert_eq!(names, ["malformed", "x"], "invalid stems are sanitized");
        assert!(jobs.iter().all(|j| j.load.is_err()));
        assert!(!dir.join("x.job").exists());
        assert!(!dir.join(".x.job").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sticky_files_are_skipped_on_rescan() {
        let dir = scratch("sticky");
        std::fs::write(dir.join("x.job"), "not a jobs file").expect("job");
        let mut sticky = BTreeSet::new();
        sticky.insert(dir.join("x.job"));
        let (jobs, files) = scan_spool_collect(&dir, &sticky).expect("scan");
        assert!(jobs.is_empty(), "sticky files are not resubmitted");
        assert!(files.is_empty(), "sticky files are not rescanned");
        assert!(dir.join("x.job").exists(), "sticky files are left alone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_defers_consumption_until_ack() {
        use crate::Intake;
        let dir = scratch("ack");
        let chip = ocr_gen::random::small_random(4, 2, 3, 8, 7);
        std::fs::write(
            dir.join("chip.ocr"),
            write_chip(&chip.layout, &chip.placement),
        )
        .expect("chip");
        std::fs::write(
            dir.join("a.job"),
            write_jobs(&[JobSpec::new("alpha", "chip.ocr")]),
        )
        .expect("job");
        let mut intake = SpoolIntake::new(&dir, 1, false);
        let batch = intake.poll(true).expect("scan");
        assert_eq!(batch.len(), 1);
        assert!(
            dir.join("a.job").exists(),
            "the file survives until the engine acknowledges the batch"
        );
        intake.ack();
        assert!(!dir.join("a.job").exists(), "ack consumes the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_alongside_pending_jobs_still_closes_the_intake() {
        use crate::Intake;
        let dir = scratch("stopbatch");
        let chip = ocr_gen::random::small_random(4, 2, 3, 8, 7);
        std::fs::write(
            dir.join("chip.ocr"),
            write_chip(&chip.layout, &chip.placement),
        )
        .expect("chip");
        std::fs::write(
            dir.join("a.job"),
            write_jobs(&[JobSpec::new("alpha", "chip.ocr")]),
        )
        .expect("job");
        std::fs::write(dir.join("stop"), "").expect("stop");
        let mut intake = SpoolIntake::new(&dir, 1, false);
        let batch = intake
            .poll(true)
            .expect("jobs scanned with the sentinel are delivered");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].spec.name, "alpha");
        assert!(
            intake.poll(true).is_none(),
            "the consumed sentinel must still close the intake"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_sentinel_interrupts_a_long_idle_sleep() {
        use crate::Intake;
        let dir = scratch("promptstop");
        // A poll interval far beyond the test's patience: shutdown
        // latency must not depend on it.
        let mut intake = SpoolIntake::new(&dir, 60_000, false);
        assert!(intake.poll(true).is_some(), "first scan");
        let sentinel = dir.join("stop");
        let writer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            std::fs::write(&sentinel, "").expect("stop sentinel");
        });
        let started = std::time::Instant::now();
        let closed = intake.poll(true);
        writer.join().expect("writer thread");
        assert!(closed.is_none(), "the sentinel closes the intake");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "stop must interrupt the idle sleep promptly, not after \
             poll_ms ({}ms elapsed)",
            started.elapsed().as_millis()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_mode_closes_after_one_scan() {
        use crate::Intake;
        let dir = scratch("drain");
        let mut intake = SpoolIntake::new(&dir, 1, true);
        assert!(intake.poll(true).is_some());
        assert!(intake.poll(true).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
