#![warn(missing_docs)]

//! `ocr-serve` — the batch routing service.
//!
//! A long-lived front end that ties every existing runtime primitive
//! together: jobs arrive from a spool directory or manifest
//! ([`ocr_io::job`]), a deterministic scheduler admits them onto the
//! shared `ocr-exec` pool under a global step-budget admission
//! controller, long-running jobs are preempted at their next
//! net-commit boundary into `ocr-ckpt-v1` checkpoints and resumed
//! later, and every job is answered with its routed design, an
//! `ocr-stats-v1` report and a typed terminal status in a per-job
//! results directory.
//!
//! # Scheduling model
//!
//! Time is divided into *rounds*. Each round the scheduler sorts the
//! pending queue by `(priority desc, slices taken asc, submission
//! order)` — strict priority first, round-robin fairness within a
//! priority class — admits up to `max_concurrent` jobs, and grants each
//! a *slice*: a deterministic step budget of one quantum (doubling per
//! preemption of that job, so a slice always eventually spans the most
//! expensive net search). The batch runs concurrently on the `ocr-exec`
//! pool with per-task panic isolation; the round is a barrier. A job
//! whose control trips its slice budget is preempted: the flow has
//! already written an `ocr-ckpt-v1` checkpoint at the last net-commit
//! boundary, and the job re-enters the queue to be resumed from it. A
//! job that completes is finished with a typed status.
//!
//! # Determinism
//!
//! Given the same job set and budgets, the admission log — admission
//! order, slice grants, preemption points (step counts, not wall
//! clock), terminal statuses — and every routed output are byte-
//! identical at any `OCR_THREADS`, because slices are deterministic
//! step budgets, rounds are barriers processed in queue order, and
//! checkpoint/resume is byte-stable (PR 5). Telemetry timings inside
//! `stats.json` are the only nondeterministic bytes the service emits.
//!
//! # Statuses
//!
//! * `done` — completed, validation clean, nothing degraded.
//! * `salvaged` — completed with a non-empty degradation report (its
//!   own step budget ran out, or salvage degraded nets around faults);
//!   the committed wiring still validates.
//! * `preempted` — checkpointed mid-run when the *global* step budget
//!   drained; the results directory holds the checkpoint, the partial
//!   design, and stats.
//! * `rejected` — never admitted: malformed spec, unreadable chip,
//!   duplicate name, or the global budget was exhausted first.
//! * `failed` — ran and went wrong: flow error, twice-panicking task
//!   (isolated by the pool; the service and sibling jobs are
//!   unaffected), validation or verification failure.

mod engine;
mod intake;
mod journal;
mod net;

pub use engine::{run_jobs, serve, Intake, JobReport, ServeReport};
pub use intake::{load_job, manifest_jobs, scan_spool, SpoolIntake};
pub use net::{
    client_connect, client_request, NetConfig, NetIntake, PairedIntake, QuotaConfig, NET_COUNTERS,
};

use ocr_core::{FlowKind, NetOrdering};
use ocr_io::job::JobRecord;
use ocr_netlist::{Layout, RowPlacement};
use std::fmt;
use std::path::PathBuf;

/// Service configuration shared by the CLI and the embedded engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Results root: one subdirectory per job (`status`, `routes.txt`,
    /// `stats.json`, `job.ckpt`) plus `serve.log` and `results.txt`.
    /// `None` keeps everything in memory (checkpoints spill to a
    /// scratch directory that is removed afterwards).
    pub out: Option<PathBuf>,
    /// Global deterministic step budget across every job the service
    /// admits. When it drains, running checkpointed jobs end
    /// `preempted` and everything still queued ends `rejected`.
    /// `None` is unbounded.
    pub max_total_steps: Option<u64>,
    /// Jobs admitted per round (the concurrency width). At least 1.
    pub max_concurrent: usize,
    /// Base slice budget in steps. Doubles per preemption of a job so
    /// resumed searches always make progress. At least 1.
    pub quantum: u64,
    /// Directory of the write-ahead job journal (`serve.journal`).
    /// When set, every job state transition is journaled durably and a
    /// restarted service replays the journal first: terminal jobs keep
    /// their answers, preempted jobs resume from their checkpoints,
    /// and jobs whose answers were torn by the crash re-run. `None`
    /// keeps no journal (a crash loses the queue).
    pub journal: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            out: None,
            max_total_steps: None,
            max_concurrent: 2,
            quantum: 256,
            journal: None,
        }
    }
}

/// A chip resolved and audited at intake, ready to route.
#[derive(Clone, Debug)]
pub struct LoadedChip {
    /// The flow the job asked for.
    pub kind: FlowKind,
    /// The `ocr-order-v1` net ordering the job asked for (`order=` in
    /// the manifest), validated at intake. `None` keeps the flow's
    /// default ordering.
    pub ordering: Option<NetOrdering>,
    /// Parsed, audited layout.
    pub layout: Layout,
    /// Parsed, audited placement.
    pub placement: RowPlacement,
    /// FNV-1a fingerprint of the canonical chip text — stamped into
    /// checkpoints so a resume can never cross chips.
    pub chip_hash: u64,
}

/// One job as it enters the scheduler: the submitted spec plus the
/// outcome of loading its chip (an `Err` is rejected with the reason,
/// so every submission is answered).
#[derive(Clone, Debug)]
pub struct JobInput {
    /// The submitted spec.
    pub spec: ocr_io::job::JobSpec,
    /// The loaded chip, or why loading failed.
    pub load: Result<LoadedChip, String>,
    /// Directory the spec's chip path resolves against (the spool or
    /// manifest directory) — journaled so a crashed daemon can reload
    /// the chip on restart. `None` for in-memory submissions; such
    /// jobs recover only if the submitter redelivers them.
    pub base: Option<PathBuf>,
}

/// Typed terminal status of a batch job (see the crate docs for the
/// exact semantics of each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed cleanly.
    Done,
    /// Completed with degradations; committed wiring validates.
    Salvaged,
    /// Checkpointed when the global budget drained.
    Preempted,
    /// Never admitted.
    Rejected,
    /// Ran and failed.
    Failed,
}

impl JobStatus {
    /// The `ocr-results-v1` status token.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Salvaged => "salvaged",
            JobStatus::Preempted => "preempted",
            JobStatus::Rejected => "rejected",
            JobStatus::Failed => "failed",
        }
    }

    /// Parses an `ocr-results-v1` status token (the inverse of
    /// [`JobStatus::name`]).
    pub fn from_name(name: &str) -> Option<JobStatus> {
        match name {
            "done" => Some(JobStatus::Done),
            "salvaged" => Some(JobStatus::Salvaged),
            "preempted" => Some(JobStatus::Preempted),
            "rejected" => Some(JobStatus::Rejected),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A service-level failure (the per-job failures are statuses, not
/// errors — the daemon answers them and keeps going).
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Reading or writing service files failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        message: String,
    },
    /// The service configuration is unusable.
    Config(
        /// What is wrong with it.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            ServeError::Config(message) => write!(f, "config: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Converts a [`JobReport`] into its `ocr-results-v1` record.
pub(crate) fn record_of(report: &JobReport) -> JobRecord {
    JobRecord {
        name: report.name.clone(),
        status: report.status.name().to_string(),
        steps: report.steps,
        routed: report.routed,
        degraded: report.degraded,
        preempts: report.preempts,
        detail: report.detail.clone(),
    }
}
