#!/usr/bin/env sh
# Tier-1 CI gate: format, lint, build, test — fully offline.
#
# The workspace is hermetic (no external crates: seeded PRNG, bench
# harness and verification oracle are all in-tree), so everything below
# must pass with the network disabled.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (OCR_THREADS=1, sequential reference)"
OCR_THREADS=1 cargo test --workspace -q

echo "==> cargo test (default ocr-exec pool)"
cargo test --workspace -q

echo "==> ci: all green"
