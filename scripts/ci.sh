#!/usr/bin/env sh
# Tier-1 CI gate: format, lint, build, test — fully offline.
#
# The workspace is hermetic (no external crates: seeded PRNG, bench
# harness and verification oracle are all in-tree), so everything below
# must pass with the network disabled.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (OCR_THREADS=1, sequential reference)"
OCR_THREADS=1 cargo test --workspace -q

echo "==> cargo test (default ocr-exec pool)"
cargo test --workspace -q

echo "==> telemetry smoke (ocr route --suite --stats-json + obs-check)"
# The suite routed with telemetry on must yield a valid ocr-stats-v1
# document — per-phase timings and rip/retry counters for every chip's
# overcell run — at one worker and on the default pool alike.
STATS_DIR="$(mktemp -d)"
trap 'rm -rf "$STATS_DIR"' EXIT
OCR_THREADS=1 ./target/release/ocr route --suite \
    --stats-json "$STATS_DIR/stats-seq.json" >/dev/null
./target/release/obs-check "$STATS_DIR/stats-seq.json" --min-chips 3
./target/release/ocr route --suite \
    --stats-json "$STATS_DIR/stats-par.json" >/dev/null
./target/release/obs-check "$STATS_DIR/stats-par.json" --min-chips 3

echo "==> ci: all green"
