#!/usr/bin/env sh
# Tier-1 CI gate: format, lint, build, test — fully offline.
#
# The workspace is hermetic (no external crates: seeded PRNG, bench
# harness and verification oracle are all in-tree), so everything below
# must pass with the network disabled.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (OCR_THREADS=1, sequential reference)"
OCR_THREADS=1 cargo test --workspace -q

echo "==> cargo test (default ocr-exec pool)"
cargo test --workspace -q

echo "==> telemetry smoke (ocr route --suite --stats-json + obs-check)"
# The suite routed with telemetry on must yield a valid ocr-stats-v1
# document — per-phase timings and rip/retry counters for every chip's
# overcell run — at one worker and on the default pool alike.
STATS_DIR="$(mktemp -d)"
trap 'rm -rf "$STATS_DIR"' EXIT
OCR_THREADS=1 ./target/release/ocr route --suite \
    --stats-json "$STATS_DIR/stats-seq.json" >/dev/null
./target/release/obs-check "$STATS_DIR/stats-seq.json" --min-chips 3
./target/release/ocr route --suite \
    --stats-json "$STATS_DIR/stats-par.json" >/dev/null
./target/release/obs-check "$STATS_DIR/stats-par.json" --min-chips 3

echo "==> chaos smoke (ocr chaos --seed 1 --trials 8)"
# Deterministic fault-injection soak: trial 0 is deliberately poisoned
# (two-fire panic rule, so the isolation retry panics too) and must be
# reported without aborting the run; every surviving trial must be
# oracle-clean on its salvaged subset. Sequential and pooled.
OCR_THREADS=1 ./target/release/ocr chaos --seed 1 --trials 8 >/dev/null
./target/release/ocr chaos --seed 1 --trials 8 >/dev/null

echo "==> run-control smoke (interrupt, checkpoint, resume, compare)"
# A route interrupted by a tiny step budget and resumed from its
# checkpoint must be byte-identical to one that was never interrupted —
# sequentially and on the default pool.
RC_DIR="$(mktemp -d)"
./target/release/ocr generate ami33 -o "$RC_DIR/chip.ocr"
for threads in 1 ""; do (
    [ -n "$threads" ] && export OCR_THREADS="$threads"
    ./target/release/ocr route "$RC_DIR/chip.ocr" \
        --routes "$RC_DIR/full.txt" >/dev/null
    ./target/release/ocr route "$RC_DIR/chip.ocr" --max-steps 8 \
        --checkpoint-out "$RC_DIR/ck.txt" \
        --routes "$RC_DIR/part.txt" >/dev/null
    ./target/release/ocr route "$RC_DIR/chip.ocr" --resume "$RC_DIR/ck.txt" \
        --routes "$RC_DIR/resumed.txt" >/dev/null
    cmp "$RC_DIR/full.txt" "$RC_DIR/resumed.txt"
    if cmp -s "$RC_DIR/full.txt" "$RC_DIR/part.txt"; then
        echo "ci: --max-steps 8 did not interrupt the route" >&2
        exit 1
    fi
); done
rm -rf "$RC_DIR"

echo "==> ordering smoke (--order portfolio: deterministic racer, winner vs --order longest)"
# The portfolio racer must produce byte-identical routes at OCR_THREADS=1
# and on the default pool, print its deterministic winner line, and
# `--order longest` must keep working as the explicit default strategy.
OP_DIR="$(mktemp -d)"
./target/release/ocr generate ami33 -o "$OP_DIR/chip.ocr"
OCR_THREADS=1 ./target/release/ocr route "$OP_DIR/chip.ocr" --order portfolio \
    --routes "$OP_DIR/pf-seq.txt" > "$OP_DIR/pf-seq.out"
./target/release/ocr route "$OP_DIR/chip.ocr" --order portfolio \
    --routes "$OP_DIR/pf-par.txt" > "$OP_DIR/pf-par.out"
cmp "$OP_DIR/pf-seq.txt" "$OP_DIR/pf-par.txt"
cmp "$OP_DIR/pf-seq.out" "$OP_DIR/pf-par.out"
grep -q "portfolio: winner " "$OP_DIR/pf-seq.out" || {
    echo "ci: ordering smoke expected a portfolio winner line" >&2
    exit 1
}
./target/release/ocr route "$OP_DIR/chip.ocr" --order longest \
    --routes "$OP_DIR/longest.txt" >/dev/null
rm -rf "$OP_DIR"

echo "==> serve smoke (spool three suite chips, preempt/resume, diff vs ocr route)"
# The batch service on a spool of the three suite chips, with a quantum
# tight enough to force preemption: the admission log must show at least
# one preempt and one resume, every per-job stats document must satisfy
# obs-check, every answer must be byte-identical to a standalone
# `ocr route` run, and the log/results must not depend on OCR_THREADS.
SV_DIR="$(mktemp -d)"
for chip in ami33 xerox ex3; do
    ./target/release/ocr generate "$chip" -o "$SV_DIR/$chip.ocr"
    ./target/release/ocr route "$SV_DIR/$chip.ocr" \
        --routes "$SV_DIR/direct-$chip.txt" >/dev/null
done
for threads in 1 ""; do (
    [ -n "$threads" ] && export OCR_THREADS="$threads"
    tag="${threads:-par}"
    mkdir -p "$SV_DIR/spool-$tag"
    cp "$SV_DIR"/*.ocr "$SV_DIR/spool-$tag/"
    {
        echo "ocr-jobs-v1"
        for chip in ami33 xerox ex3; do
            echo "job $chip $chip.ocr flow overcell"
        done
    } > "$SV_DIR/spool-$tag/batch.job"
    ./target/release/ocr serve --spool "$SV_DIR/spool-$tag" \
        --out "$SV_DIR/out-$tag" --quantum 64 --max-concurrent 2 \
        --drain >/dev/null
    grep -q ": preempt " "$SV_DIR/out-$tag/serve.log" || {
        echo "ci: serve smoke expected at least one preemption" >&2
        exit 1
    }
    grep -q ": resume " "$SV_DIR/out-$tag/serve.log" || {
        echo "ci: serve smoke expected at least one resume" >&2
        exit 1
    }
    for chip in ami33 xerox ex3; do
        ./target/release/obs-check "$SV_DIR/out-$tag/$chip/stats.json" >/dev/null
        cmp "$SV_DIR/out-$tag/$chip/routes.txt" "$SV_DIR/direct-$chip.txt"
    done
); done
cmp "$SV_DIR/out-1/serve.log" "$SV_DIR/out-par/serve.log"
cmp "$SV_DIR/out-1/results.txt" "$SV_DIR/out-par/results.txt"
rm -rf "$SV_DIR"

echo "==> crash-recovery smoke (kill -9 a journaled daemon, restart, diff vs uninterrupted)"
# A journaled daemon SIGKILLed mid-batch and restarted with the same
# --journal must answer every job byte-identically to a never-killed
# run (results.txt, per-job routes and status), log its recovery, and
# export the durability counters through obs-check --service. serve.log
# is deliberately not compared: the restarted run carries extra
# `recover ...` lines. Sequential and pooled.
KR_DIR="$(mktemp -d)"
for chip in ami33 xerox ex3; do
    ./target/release/ocr generate "$chip" -o "$KR_DIR/$chip.ocr"
done
for threads in 1 ""; do (
    [ -n "$threads" ] && export OCR_THREADS="$threads"
    tag="${threads:-par}"
    for mode in ref killed; do
        mkdir -p "$KR_DIR/spool-$mode-$tag"
        cp "$KR_DIR"/*.ocr "$KR_DIR/spool-$mode-$tag/"
        {
            echo "ocr-jobs-v1"
            for chip in ami33 xerox ex3; do
                echo "job $chip $chip.ocr flow overcell"
            done
        } > "$KR_DIR/spool-$mode-$tag/batch.job"
    done
    ./target/release/ocr serve --spool "$KR_DIR/spool-ref-$tag" \
        --out "$KR_DIR/out-ref-$tag" --journal "$KR_DIR/wal-ref-$tag" \
        --quantum 64 --max-concurrent 2 --drain >/dev/null
    ./target/release/ocr serve --spool "$KR_DIR/spool-killed-$tag" \
        --out "$KR_DIR/out-killed-$tag" --journal "$KR_DIR/wal-killed-$tag" \
        --quantum 64 --max-concurrent 2 >/dev/null 2>&1 &
    pid=$!
    # Let the daemon journal at least the batch admission before the
    # kill, so the restart genuinely recovers instead of starting cold.
    i=0
    while [ ! -s "$KR_DIR/wal-killed-$tag/serve.journal" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    [ -s "$KR_DIR/wal-killed-$tag/serve.journal" ] || {
        echo "ci: crash smoke: journal never appeared" >&2
        exit 1
    }
    sleep 1
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    ./target/release/ocr serve --spool "$KR_DIR/spool-killed-$tag" \
        --out "$KR_DIR/out-killed-$tag" --journal "$KR_DIR/wal-killed-$tag" \
        --quantum 64 --max-concurrent 2 --drain >/dev/null
    grep -q "recover " "$KR_DIR/out-killed-$tag/serve.log" || {
        echo "ci: crash smoke expected recovery lines in serve.log" >&2
        exit 1
    }
    cmp "$KR_DIR/out-ref-$tag/results.txt" "$KR_DIR/out-killed-$tag/results.txt"
    for chip in ami33 xerox ex3; do
        cmp "$KR_DIR/out-ref-$tag/$chip/routes.txt" "$KR_DIR/out-killed-$tag/$chip/routes.txt"
        cmp "$KR_DIR/out-ref-$tag/$chip/status" "$KR_DIR/out-killed-$tag/$chip/status"
    done
    ./target/release/obs-check "$KR_DIR/out-killed-$tag/serve-stats.json" --service \
        --require journal.append --require journal.replayed \
        --require recover.jobs_resumed --require io.retries \
        --require net.conns --require net.frames --require net.rejected.quota \
        --require net.rejected.overload --require net.timeouts >/dev/null
); done
rm -rf "$KR_DIR"

echo "==> network smoke (TCP submissions vs spool reference, torn client mid-frame)"
# A journaled daemon on an ephemeral TCP port, fed the suite chips over
# ocr-wire-v1 — with one client deliberately killed mid-frame — must
# answer byte-identically (results.txt, per-job routes and status) to a
# spool-fed reference, sequentially and pooled, and export the net.*
# counters. serve.log is not compared: TCP arrival batching differs
# from a single spool scan, and only the answers are contractual.
NS_DIR="$(mktemp -d)"
for chip in ami33 xerox ex3; do
    ./target/release/ocr generate "$chip" -o "$NS_DIR/$chip.ocr"
done
for threads in 1 ""; do (
    [ -n "$threads" ] && export OCR_THREADS="$threads"
    tag="${threads:-par}"
    mkdir -p "$NS_DIR/spool-$tag"
    cp "$NS_DIR"/*.ocr "$NS_DIR/spool-$tag/"
    {
        echo "ocr-jobs-v1"
        for chip in ami33 xerox ex3; do
            echo "job $chip $chip.ocr flow overcell"
        done
    } > "$NS_DIR/spool-$tag/batch.job"
    ./target/release/ocr serve --spool "$NS_DIR/spool-$tag" \
        --out "$NS_DIR/out-ref-$tag" \
        --quantum 64 --max-concurrent 2 --drain >/dev/null
    ./target/release/ocr serve --listen 127.0.0.1:0 \
        --addr-file "$NS_DIR/addr-$tag" --out "$NS_DIR/out-net-$tag" \
        --journal "$NS_DIR/wal-$tag" \
        --quantum 64 --max-concurrent 2 >/dev/null 2>&1 &
    pid=$!
    i=0
    while [ ! -s "$NS_DIR/addr-$tag" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    [ -s "$NS_DIR/addr-$tag" ] || {
        echo "ci: net smoke: the daemon never published its address" >&2
        exit 1
    }
    addr="$(cat "$NS_DIR/addr-$tag")"
    # One hostile client first: tear the frame mid-payload and vanish.
    # The daemon must shrug it off and serve everyone after it.
    ./target/release/ocr submit --addr "$addr" --chip "$NS_DIR/ami33.ocr" \
        --name torn --tear-bytes 40 >/dev/null
    for chip in ami33 xerox ex3; do
        ./target/release/ocr submit --addr "$addr" \
            --chip "$NS_DIR/$chip.ocr" --flow overcell >/dev/null
    done
    ./target/release/ocr submit --addr "$addr" --shutdown >/dev/null
    wait "$pid"
    cmp "$NS_DIR/out-ref-$tag/results.txt" "$NS_DIR/out-net-$tag/results.txt"
    for chip in ami33 xerox ex3; do
        cmp "$NS_DIR/out-ref-$tag/$chip/routes.txt" "$NS_DIR/out-net-$tag/$chip/routes.txt"
        cmp "$NS_DIR/out-ref-$tag/$chip/status" "$NS_DIR/out-net-$tag/$chip/status"
    done
    ./target/release/obs-check "$NS_DIR/out-net-$tag/serve-stats.json" --service \
        --require net.conns --require net.frames --require net.rejected.quota \
        --require net.rejected.overload --require net.timeouts >/dev/null
); done
rm -rf "$NS_DIR"

echo "==> bench snapshots (inner_loop smoke + validate committed BENCH_*.json)"
# The inner-loop benchmark must run end to end (quick mode: one
# measurement run per chip) and emit a valid ocr-bench-v1 document, and
# every committed BENCH_*.json snapshot must still parse with the right
# schema and bench name — a stale or hand-mangled snapshot fails CI, as
# does a missing BENCH_inner_loop.json.
BN_DIR="$(mktemp -d)"
OCR_BENCH_QUICK=1 ./target/release/inner_loop --json "$BN_DIR/inner_loop.json" >/dev/null
./target/release/obs-check "$BN_DIR/inner_loop.json" --bench inner_loop
rm -rf "$BN_DIR"
[ -f BENCH_inner_loop.json ] || {
    echo "ci: BENCH_inner_loop.json snapshot is missing" >&2
    exit 1
}
for snap in BENCH_*.json; do
    name="${snap#BENCH_}"
    name="${name%.json}"
    ./target/release/obs-check "$snap" --bench "$name"
done

echo "==> no panicking macros reachable from external input (crates/io)"
# The parsers take untrusted text; their non-test code must contain no
# unwrap/expect/panic!. (Everything before the #[cfg(test)] marker.)
for f in crates/io/src/*.rs; do
    if sed -n '1,/#\[cfg(test)\]/p' "$f" \
        | grep -n '\.unwrap()\|\.expect(\|panic!('; then
        echo "ci: panicking macro in $f non-test code" >&2
        exit 1
    fi
done

echo "==> ci: all green"
