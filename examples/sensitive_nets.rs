//! Sensitive-net aware routing: the paper's §3.2 extension point —
//! "Additional terms can be included in the cost function for nets with
//! special constraints, for example, to prevent parallel routing of
//! sensitive nets."
//!
//! A sensitive analog net runs at y = 300 between two keep-out walls
//! whose gaps are horizontally offset, so every bus net must place two
//! corners *somewhere in the band* around the victim. With the `w24`
//! term enabled the corners settle as far from the victim as the band
//! allows; with it disabled they land wherever wire length dictates.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example sensitive_nets
//! ```

use overcell_router::core::{
    config::LevelBConfig, cost::CostWeights, level_b::LevelBRouter, order::NetOrdering,
};
use overcell_router::geom::{Layer, LayerSet, Point, Rect};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass, NetId, Obstacle};

fn build() -> (Layout, NetId, Vec<NetId>) {
    let mut layout = Layout::new(Rect::new(0, 0, 600, 600));
    // Two walls with offset gaps bound a band around y = 300.
    // Top wall at y ∈ [340, 350], gap at x ∈ [60, 140].
    layout.add_obstacle(Obstacle::new(
        Rect::new(-5, 340, 60, 350),
        LayerSet::level_b(),
    ));
    layout.add_obstacle(Obstacle::new(
        Rect::new(140, 340, 605, 350),
        LayerSet::level_b(),
    ));
    // Bottom wall at y ∈ [250, 260], gap at x ∈ [420, 500].
    layout.add_obstacle(Obstacle::new(
        Rect::new(-5, 250, 420, 260),
        LayerSet::level_b(),
    ));
    layout.add_obstacle(Obstacle::new(
        Rect::new(500, 250, 605, 260),
        LayerSet::level_b(),
    ));

    // The victim runs through the band.
    let sensitive = layout.add_net("analog_ref", NetClass::Critical);
    layout.add_pin(sensitive, None, Point::new(20, 300), Layer::Metal2);
    layout.add_pin(sensitive, None, Point::new(580, 300), Layer::Metal2);

    // Aggressor bus: top-left to bottom-right, forced through both gaps.
    let mut bus = Vec::new();
    for k in 0..4i64 {
        let n = layout.add_net(format!("bus{k}"), NetClass::Signal);
        layout.add_pin(n, None, Point::new(70 + 20 * k, 560), Layer::Metal2);
        layout.add_pin(n, None, Point::new(430 + 20 * k, 40), Layer::Metal2);
        bus.push(n);
    }
    (layout, sensitive, bus)
}

/// Routes and returns the mean distance of in-band bus corners from the
/// victim's y = 300.
fn run(w24: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let (layout, sensitive, bus) = build();
    let mut order = vec![sensitive];
    order.extend(&bus);
    let mut nets = vec![sensitive];
    nets.extend(&bus);
    let cfg = LevelBConfig {
        weights: CostWeights {
            w24,
            ..CostWeights::default()
        },
        sensitive_nets: vec![sensitive],
        ordering: NetOrdering::User(order),
        ..LevelBConfig::default()
    };
    let mut router = LevelBRouter::new(&layout, &nets, cfg)?;
    let res = router.route_all()?;
    assert!(res.design.failed.is_empty(), "all nets must route");
    let errors = validate_routed_design(&layout, &res.design);
    assert!(errors.is_empty(), "{errors:?}");

    let mut dists = Vec::new();
    for &n in &bus {
        for via in &res.design.route(n).expect("routed").vias {
            if via.at.y > 260 && via.at.y < 340 {
                dists.push((via.at.y - 300).abs() as f64);
            }
        }
    }
    assert!(!dists.is_empty(), "the walls must force in-band corners");
    Ok(dists.iter().sum::<f64>() / dists.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let off = run(0.0)?;
    let on = run(8.0)?;
    println!("sensitive-net protection (w24 term), mean corner distance from the victim:");
    println!("  w24 = 0 (off): {off:.1} DBU");
    println!("  w24 = 8 (on) : {on:.1} DBU");
    assert!(
        on >= off,
        "the term must push corners away from the sensitive net"
    );
    println!("the cost term pushed aggressor corners away from the sensitive wire.");
    Ok(())
}
