//! Full-chip comparison on the ami33-equivalent benchmark: runs the
//! paper's over-cell flow, the 2-layer channel baseline and the 4-layer
//! channel comparator, then prints a Table 2/3-style summary.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example macro_cell_chip
//! ```

use overcell_router::core::{
    run_analytic_four_layer_estimate, FourLayerChannelFlow, OverCellFlow, TwoLayerChannelFlow,
};
use overcell_router::gen::suite;
use overcell_router::netlist::{validate_routed_design, RouteMetrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = suite::ami33_like();
    println!(
        "benchmark {}: {} cells, {} nets, {} pins",
        chip.spec.name,
        chip.layout.cells.len(),
        chip.layout.nets.len(),
        chip.layout.total_pins()
    );

    let over = OverCellFlow::default().run(&chip.layout, &chip.placement)?;
    let two = TwoLayerChannelFlow::default().run(&chip.layout, &chip.placement)?;
    let four = FourLayerChannelFlow::default().run(&chip.layout, &chip.placement)?;

    for (name, flow) in [
        ("over-cell 4L", &over),
        ("channel 2L", &two),
        ("channel 4L", &four),
    ] {
        let errors = validate_routed_design(&flow.layout, &flow.design);
        assert!(errors.is_empty(), "{name}: {errors:?}");
        println!(
            "{name:<14} area {:>9}  wl {:>8}  vias {:>5}  corners {:>5}  (+{} terminal cuts)",
            flow.metrics.layout_area,
            flow.metrics.wire_length,
            flow.metrics.vias,
            flow.metrics.corners,
            flow.metrics.terminal_via_cuts,
        );
    }
    let est = run_analytic_four_layer_estimate(&two, &chip.layout);
    println!("channel 4L (paper's optimistic 50% model): area {est}");

    let red = over.metrics.reductions_vs(&two.metrics);
    println!();
    println!("over-cell vs 2-layer channels: {red}");
    println!(
        "over-cell vs 4-layer channels: area {:+.1}%",
        RouteMetrics::percent_reduction(
            four.metrics.layout_area as f64,
            over.metrics.layout_area as f64
        )
    );
    if let Some(stats) = &over.stats {
        println!("level B routing: {stats}");
    }
    Ok(())
}
