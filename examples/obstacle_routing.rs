//! Obstacle-aware over-cell routing: the Level B router recognizes
//! arbitrarily sized obstacles — power/ground trunks, limited M3/M4 use
//! inside macro-cells, or user keep-outs over sensitive circuits — and
//! routes around them.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example obstacle_routing
//! ```

use overcell_router::core::{config::LevelBConfig, level_b::LevelBRouter};
use overcell_router::geom::{Layer, LayerSet, Point, Rect};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass, Obstacle};
use overcell_router::render::render_svg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut layout = Layout::new(Rect::new(0, 0, 800, 600));

    // A macro-cell with a sensitive analog block: the user excludes the
    // area over it from both over-cell layers to avoid capacitive
    // coupling (paper §1).
    layout.add_cell("mixed_signal", Rect::new(100, 100, 700, 500));
    layout.add_obstacle(Obstacle::new(
        Rect::new(300, 200, 500, 400),
        LayerSet::level_b(),
    ));
    // A metal3 power spine inside the cell: obstacle on M3 only —
    // vertical metal4 wires may still cross it.
    layout.add_obstacle(Obstacle::new(
        Rect::new(150, 150, 650, 170),
        LayerSet::single(Layer::Metal3),
    ));

    // Nets that must cross the obstacle region.
    let straight = layout.add_net("straight", NetClass::Signal);
    layout.add_pin(straight, None, Point::new(20, 300), Layer::Metal2);
    layout.add_pin(straight, None, Point::new(780, 300), Layer::Metal2);

    let diagonal = layout.add_net("diagonal", NetClass::Signal);
    layout.add_pin(diagonal, None, Point::new(40, 80), Layer::Metal2);
    layout.add_pin(diagonal, None, Point::new(760, 520), Layer::Metal2);

    let nets = vec![straight, diagonal];
    let mut router = LevelBRouter::new(&layout, &nets, LevelBConfig::default())?;
    let result = router.route_all()?;

    assert!(result.design.failed.is_empty(), "all nets must route");
    let errors = validate_routed_design(&layout, &result.design);
    assert!(errors.is_empty(), "validation errors: {errors:?}");

    for &net in &nets {
        let route = result.design.route(net).expect("routed");
        let direct = layout.net_hpwl(net);
        println!(
            "net `{}`: wl {} (direct distance {}), {} corner(s) — detour {:.1}%",
            layout.net(net).name,
            route.wire_length(),
            direct,
            route.corner_count(),
            100.0 * (route.wire_length() - direct) as f64 / direct as f64,
        );
    }
    // The straight net cannot go straight: the keep-out forces a detour.
    let detoured = result.design.route(straight).expect("routed");
    assert!(detoured.wire_length() > layout.net_hpwl(straight));

    let svg = render_svg(&layout, &result.design);
    std::fs::write("obstacle_routing.svg", &svg)?;
    println!("wrote obstacle_routing.svg ({} bytes)", svg.len());
    Ok(())
}
