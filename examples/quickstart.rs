//! Quickstart: build a small macro-cell layout by hand, route it with
//! the paper's two-level over-cell flow, and print the result.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use overcell_router::core::{OverCellFlow, PartitionStrategy};
use overcell_router::geom::{Layer, Point, Rect};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass, Row, RowPlacement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A die with two rows of two macro-cells each.
    let mut layout = Layout::new(Rect::new(0, 0, 600, 420));
    let alu = layout.add_cell("alu", Rect::new(60, 60, 270, 180));
    let rom = layout.add_cell("rom", Rect::new(300, 60, 540, 180));
    let ram = layout.add_cell("ram", Rect::new(60, 270, 300, 390));
    let ctl = layout.add_cell("ctl", Rect::new(330, 270, 540, 390));

    // A critical net (set A): routed in the middle channel on M1/M2.
    let clk = layout.add_net("clk", NetClass::Critical);
    layout.add_pin(clk, Some(alu), Point::new(120, 180), Layer::Metal2);
    layout.add_pin(clk, Some(ram), Point::new(240, 270), Layer::Metal2);

    // Ordinary signal nets (set B): routed over the cells on M3/M4.
    let data = layout.add_net("data", NetClass::Signal);
    layout.add_pin(data, Some(alu), Point::new(90, 60), Layer::Metal2);
    layout.add_pin(data, Some(ctl), Point::new(480, 390), Layer::Metal2);

    let fanout = layout.add_net("fanout", NetClass::Signal);
    layout.add_pin(fanout, Some(rom), Point::new(360, 60), Layer::Metal2);
    layout.add_pin(fanout, Some(ram), Point::new(120, 390), Layer::Metal2);
    layout.add_pin(fanout, Some(ctl), Point::new(420, 270), Layer::Metal2);

    let placement = RowPlacement::new(
        vec![
            Row {
                y0: 60,
                height: 120,
                cells: vec![alu, rom],
            },
            Row {
                y0: 270,
                height: 120,
                cells: vec![ram, ctl],
            },
        ],
        60,
        60,
    );

    // The paper's flow: critical/timing nets to channels, everything
    // else over-cell.
    let flow = OverCellFlow {
        partition: PartitionStrategy::ByClass,
        ..OverCellFlow::default()
    };
    let result = flow.run(&layout, &placement)?;

    println!("routed {} nets:", result.metrics.routed_nets);
    println!(
        "  set A (channels, M1/M2): {} nets",
        result.level_a_nets.len()
    );
    println!(
        "  set B (over-cell, M3/M4): {} nets",
        result.level_b_nets.len()
    );
    println!("  final die: {}", result.layout.die);
    println!("  metrics: {}", result.metrics);
    if let Some(stats) = &result.stats {
        println!("  level B: {stats}");
    }

    // Audit the output: every net connected, no shorts, no obstacle or
    // die violations.
    let errors = validate_routed_design(&result.layout, &result.design);
    assert!(errors.is_empty(), "validation errors: {errors:?}");
    println!("validation: clean");

    // Inspect one route.
    let route = result.design.route(data).expect("data net routed");
    println!(
        "net `data`: wl {}, {} corner(s), {} via cut(s)",
        route.wire_length(),
        route.corner_count(),
        route.via_cuts()
    );
    Ok(())
}
