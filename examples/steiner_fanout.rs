//! Multi-terminal routing with the Prim-based rectilinear Steiner
//! heuristic: a high-fanout net is decomposed into two-terminal
//! connections that may attach to *Steiner points* on already-routed
//! branches, beating the star and matching/beating the terminal-only
//! spanning tree.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example steiner_fanout
//! ```

use overcell_router::core::steiner::rectilinear_mst_length;
use overcell_router::core::{config::LevelBConfig, level_b::LevelBRouter};
use overcell_router::geom::{manhattan, Layer, Point, Rect};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut layout = Layout::new(Rect::new(0, 0, 1000, 1000));

    // A clock-tree-like fanout: one driver, seven sinks.
    let pins = [
        Point::new(500, 500), // driver
        Point::new(100, 100),
        Point::new(900, 100),
        Point::new(100, 900),
        Point::new(900, 900),
        Point::new(500, 60),
        Point::new(60, 500),
        Point::new(940, 500),
    ];
    let net = layout.add_net("fanout8", NetClass::Signal);
    for &p in &pins {
        layout.add_pin(net, None, p, Layer::Metal2);
    }

    let nets = vec![net];
    let mut router = LevelBRouter::new(&layout, &nets, LevelBConfig::default())?;
    let result = router.route_all()?;
    let errors = validate_routed_design(&layout, &result.design);
    assert!(errors.is_empty(), "validation errors: {errors:?}");

    let route = result.design.route(net).expect("routed");
    let star: i64 = pins[1..].iter().map(|&p| manhattan(pins[0], p)).sum();
    let mst = rectilinear_mst_length(&pins);
    println!("fanout-8 net routed over-cell:");
    println!("  star topology length : {star}");
    println!("  terminal-only MST    : {mst}");
    println!("  Steiner-heuristic wl : {}", route.wire_length());
    println!(
        "  corners: {}, via cuts: {}",
        route.corner_count(),
        route.via_cuts()
    );
    assert!(
        route.wire_length() <= mst,
        "Steiner attachment must not exceed the terminal-only MST"
    );
    assert!(route.wire_length() < star, "must beat the star");
    Ok(())
}
