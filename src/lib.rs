#![warn(missing_docs)]

//! # overcell-router
//!
//! A multi-layer macro-cell router utilizing over-cell areas — a
//! from-scratch Rust reproduction of **E. Katsadas and E. Shen,
//! "A Multi-Layer Router Utilizing Over-Cell Areas", 27th ACM/IEEE
//! Design Automation Conference (DAC), 1990.**
//!
//! The methodology assumes four routing layers. Routing happens in two
//! levels:
//!
//! 1. **Level A** — a selected subset of the nets (set A) is routed in
//!    between-cell channels using metal1/metal2 and a classical channel
//!    router. This fixes the layout dimensions and terminal locations.
//! 2. **Level B** — the remaining nets (set B) are routed over the
//!    *entire* layout area (between-cell **and** over-cell) on
//!    metal3/metal4 by a track-based two-dimensional router that finds
//!    all minimum-corner paths with a modified BFS over a *Track
//!    Intersection Graph*, selects among them with a congestion-aware
//!    cost function, avoids arbitrary obstacles, and handles
//!    multi-terminal nets with a Prim-based rectilinear Steiner
//!    heuristic.
//!
//! This umbrella crate re-exports the entire workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`exec`] | `ocr-exec` | scoped work-stealing thread pool behind every parallel stage |
//! | [`obs`] | `ocr-obs` | telemetry: spans, counters, stats tables, Chrome traces |
//! | [`fault`] | `ocr-fault` | deterministic fault injection, chaos plans, input corruption |
//! | [`geom`] | `ocr-geom` | points, rectangles, intervals, layers |
//! | [`netlist`] | `ocr-netlist` | layout, nets, design rules, metrics, validation |
//! | [`grid`] | `ocr-grid` | routing grid with non-uniform tracks and occupancy |
//! | [`channel`] | `ocr-channel` | channel routers (left-edge + dogleg, greedy, 4-layer) and chip-level channel decomposition |
//! | [`maze`] | `ocr-maze` | Lee maze-router baseline |
//! | [`core`] | `ocr-core` | the paper's Level B router and complete flows |
//! | [`gen`] | `ocr-gen` | synthetic benchmark layouts (ami33/Xerox/ex3 equivalents) |
//! | [`io`] | `ocr-io` | `.ocr` text-format serialization + routed-geometry export |
//! | [`render`] | `ocr-render` | SVG output |
//! | [`verify`] | `ocr-verify` | independent DRC + connectivity verification oracle |
//!
//! # Quick start
//!
//! Route a generated macro-cell chip with the paper's proposed flow and
//! compare it against the two-layer channel baseline:
//!
//! ```
//! use overcell_router::core::{OverCellFlow, TwoLayerChannelFlow};
//! use overcell_router::gen::random::small_random;
//!
//! let chip = small_random(6, 2, 3, 10, 42);
//! let over = OverCellFlow::default().run(&chip.layout, &chip.placement)?;
//! let base = TwoLayerChannelFlow::default().run(&chip.layout, &chip.placement)?;
//! assert!(over.metrics.layout_area <= base.metrics.layout_area);
//! # Ok::<(), overcell_router::core::RouteError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

pub use ocr_channel as channel;
pub use ocr_core as core;
pub use ocr_exec as exec;
pub use ocr_fault as fault;
pub use ocr_gen as gen;
pub use ocr_geom as geom;
pub use ocr_grid as grid;
pub use ocr_io as io;
pub use ocr_maze as maze;
pub use ocr_netlist as netlist;
pub use ocr_obs as obs;
pub use ocr_render as render;
pub use ocr_serve as serve;
pub use ocr_verify as verify;
