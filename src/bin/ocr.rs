//! `ocr` — command-line driver for the over-cell router.
//!
//! ```text
//! ocr generate <ami33|xerox|ex3|random> [--seed N] [-o chip.ocr]
//! ocr route <chip.ocr> [--flow overcell|channel2|channel3|channel4]
//!                      [--order NAME|portfolio[:K]]
//!                      [--svg out.svg] [--routes out.txt] [--salvage]
//!                      [--stats] [--stats-json out.json] [--trace-out out.trace]
//! ocr route --suite [--salvage] [--stats] [--stats-json out.json] [--trace-out out.trace]
//! ocr verify <chip.ocr> [--flow ...] [--routes in.txt] [--strict]
//! ocr verify --suite [--strict]
//! ocr chaos [--seed N] [--trials K]
//! ocr serve [--spool DIR] [--manifest FILE] [--listen ADDR] [--out DIR]
//!           [--journal DIR] [--drain] [--max-total-steps N]
//!           [--max-concurrent N] [--quantum N]
//! ocr submit --addr HOST:PORT (--chip FILE | --ping | --shutdown)
//! ocr stats <chip.ocr>
//! ```

use overcell_router::core::{
    ordering_from_name, resume_from_doc, CheckpointSpec, CostWeights, FlowKind, FlowOptions,
    FlowResult, LevelBConfig, NetOrdering, OverCellFlow, RunSession,
};
use overcell_router::exec::RunControl;
use overcell_router::fault;
use overcell_router::gen::{random::small_random, suite, GeneratedChip};
use overcell_router::io::ckpt::{fnv1a_64, parse_checkpoint};
use overcell_router::io::{atomic_write, parse_chip, parse_routes, write_chip, write_routes};
use overcell_router::netlist::{
    validate_routed_design, ChipMetrics, Layout, NetClass, RowPlacement,
};
use overcell_router::render::render_svg;
use overcell_router::verify::{verify_with, VerifyOptions};
use std::process::ExitCode;

const USAGE: &str = "\
ocr — multi-layer over-cell router (Katsadas & Shen, DAC 1990)

USAGE:
  ocr generate <ami33|xerox|ex3|random> [--seed N] [-o FILE]
      Generate a benchmark chip and write it as .ocr text (stdout by
      default).
  ocr route <chip.ocr> [--flow overcell|channel2|channel3|channel4]
                       [--order longest|shortest|congestion|criticality|
                                shuffle[:SEED]|portfolio[:K]]
                       [--svg FILE] [--routes FILE] [--salvage]
                       [--weights default|dense|length-only|k=v,...]
                       [--stats] [--stats-json FILE] [--trace-out FILE]
                       [--max-steps N] [--deadline-ms MS]
                       [--checkpoint-out FILE [--checkpoint-every N]]
                       [--resume FILE]
      Route the chip with the selected flow (default: overcell), print
      metrics, optionally write an SVG and the routed geometry.
      --order picks the Level B net-ordering strategy (`ocr-order-v1`;
      overcell flow only; default: longest). `portfolio[:K]` races K
      strategies (default 4: longest, congestion, criticality,
      shuffle:1; K > 4 adds shuffle:2, shuffle:3, …) concurrently on
      the ocr-exec pool, cancels the losers once a strategy commits a
      full result, and keeps the winner by a deterministic rule —
      fewest unrouted nets, then lowest steps, then lowest strategy
      index — so the routed output is bit-identical at any OCR_THREADS
      and never worse in unrouted nets than --order longest. The racer
      manages its own run controls, so portfolio cannot be combined
      with --max-steps/--deadline-ms/--checkpoint-out/--resume.
      --weights sets the Level B cost function (overcell flow only):
      a preset name (default, dense, length-only) or comma-separated
      overrides of the defaults (w1, w21, w22, w23, w24, radius —
      e.g. `--weights w1=2.0,w24=0.5`). Non-finite values are rejected
      before routing starts.
      --salvage degrades gracefully instead of aborting: Level B setup
      errors and per-net panics fail only the affected net, and the
      result carries a per-net degradation report.
      --max-steps bounds the run by a deterministic work budget (one
      step per Level B search-window attempt or rip-up; the same budget
      trips at the same point at any OCR_THREADS). --deadline-ms adds a
      best-effort wall-clock limit. A tripped run is not an error: the
      unfinished nets are declared failed with a typed reason
      (budget-exceeded / cancelled) and the committed wiring still
      passes the oracle.
      --checkpoint-out writes `ocr-ckpt-v1` progress snapshots every
      --checkpoint-every net commits (default 1) plus a final one;
      --resume continues from such a file (the flow is taken from the
      checkpoint unless --flow repeats it, and the chip must be the
      same). An interrupted run resumed this way produces byte-identical
      routes to one that was never interrupted.
      Any of --stats/--stats-json/--trace-out turns on ocr-obs
      telemetry (observational only — the routed design is identical
      with it on or off): --stats prints a per-phase timing table,
      --stats-json writes machine-readable `ocr-stats-v1` JSON, and
      --trace-out writes a Chrome trace (load via chrome://tracing or
      https://ui.perfetto.dev).
  ocr route --suite [--stats] [--stats-json FILE] [--trace-out FILE]
      Route every suite chip with every flow (in parallel across the
      ocr-exec pool; set OCR_THREADS to bound it) and print one metrics
      line per combination. The telemetry flags cover every (chip,
      flow) combination in one document.
  ocr verify <chip.ocr> [--flow overcell|channel2|channel3|channel4]
                        [--routes FILE] [--strict]
      Run the independent ocr-verify oracle. Routes the chip with the
      selected flow (default: overcell), or, with --routes, audits
      existing routed geometry against the chip file's layout as-is.
      --strict checks full drawn-width spacing on all four layers.
      Prints the report; exits non-zero when violations are found.
  ocr verify --suite [--strict]
      Verify every flow on every suite chip; exits non-zero when any
      combination is unclean.
  ocr chaos [--seed N] [--trials K]
      Deterministic chaos harness: run K over-cell salvage trials over
      perturbed suite chips with the seeded fault plan armed — injected
      panics, forced rip-up storms, sealed cells/terminals, corrupted
      chip text fed to the parser. Each trial is isolated in the worker
      pool (a panicking trial is retried once, then reported poisoned
      without aborting the run) and its salvaged result is checked by
      the ocr-verify oracle. Exits non-zero when any completed trial is
      oracle-unclean. Defaults: --seed 1, --trials 8.
  ocr serve [--spool DIR] [--manifest FILE] [--listen ADDR] [--out DIR]
            [--journal DIR] [--max-total-steps N] [--max-concurrent N]
            [--quantum N] [--poll-ms MS] [--drain] [--addr-file FILE]
            [--stage DIR] [--max-conns N] [--net-timeout-ms MS]
            [--net-idle-ms MS] [--max-frame-bytes N] [--max-pending N]
            [--tenant-rate N] [--tenant-burst N]
      Batch routing service. Jobs come from an `ocr-jobs-v1` manifest
      (--manifest, chip paths relative to it), a spool directory
      (--spool), and/or a TCP listener (--listen): drop `*.job` files in
      the spool and they are consumed in filename order; a file named
      `stop` shuts the service down after the queue drains, and --drain
      processes what is already spooled and exits.
      A deterministic scheduler admits up to --max-concurrent jobs per
      round onto the ocr-exec pool, slicing each job's work into
      --quantum step budgets (doubling per preemption); a job that
      outruns its slice is preempted into an `ocr-ckpt-v1` checkpoint at
      its next net-commit boundary and resumed later. --max-total-steps
      caps deterministic work across all jobs: when it drains, running
      jobs end `preempted` and queued ones `rejected`. Each job is
      answered under <out>/<name>/ with `status`, `routes.txt`,
      `stats.json` and its checkpoint, plus service-level `serve.log`
      (deterministic: step counts, never wall clock), `results.txt`
      (`ocr-results-v1`) and `serve-stats.json` (`ocr-stats-v1`
      service telemetry). Exits non-zero when any job ends `failed`.
      --journal keeps a crash-safe write-ahead job journal
      (`ocr-journal-v1`, DIR/serve.journal): every accepted job and
      every state transition is recorded durably before it takes
      effect, and a restarted service replays the journal first —
      finished jobs keep their answers, preempted jobs resume from
      their checkpoints, and jobs whose answers were torn mid-write
      re-run — so a killed daemon restarted with the same --journal,
      --out and spool/manifest produces byte-identical routes and
      results. A torn or corrupted journal tail is dropped with a
      warning in serve.log, never an error.
      --listen binds an `ocr-wire-v1` TCP front-end on ADDR (port 0
      picks an ephemeral port; the bound address is printed and, with
      --addr-file, written to FILE). Network submissions feed the same
      journaled intake as the spool, so their answers are byte-identical
      to spooled ones and survive a kill-restart. The front-end is
      bounded on every axis: at most --max-conns concurrent
      connections (excess clients wait in the kernel backlog), frames
      capped at --max-frame-bytes, a per-read/write deadline of
      --net-timeout-ms once a frame has started and --net-idle-ms
      between frames (slow-loris clients get `error timeout` and are
      disconnected), and at most --max-pending submissions queued ahead
      of the engine — beyond that, and once --max-total-steps is
      exhausted, clients get `rejected … overload retry-after <ms>`.
      --tenant-rate/--tenant-burst arm a per-tenant token-bucket quota
      (the `tenant` job option names the bucket; rate 0 caps each
      tenant at a hard burst); over-quota submissions get `rejected …
      quota retry-after <ms>`. Submitted chips are staged under --stage
      (default: <out>/net-stage). A wire `shutdown` request drains the
      service like a spool `stop`. Front-end counters (net.conns,
      net.frames, net.rejected.quota, net.rejected.overload,
      net.timeouts) land in serve-stats.json.
      Defaults: --max-concurrent 2, --quantum 256, --poll-ms 200,
      --max-conns 8, --net-timeout-ms 5000, --net-idle-ms 10000,
      --max-frame-bytes 1048576, --max-pending 64.
  ocr submit --addr HOST:PORT (--chip FILE | --ping | --shutdown)
             [--name NAME] [--flow F] [--order O] [--priority P]
             [--max-steps N] [--tenant T] [--salvage] [--verify]
             [--timeout-ms MS] [--tear-bytes N]
      `ocr-wire-v1` client for a running `ocr serve --listen` daemon.
      --chip submits the chip file inline (job name from --name or the
      file stem) and waits for the service's durable accept; exits
      non-zero on a typed rejection (quota, overload, closed) or wire
      error. --ping checks liveness; --shutdown asks the service to
      drain and exit. --tear-bytes N writes only the first N bytes of
      the submit frame and disconnects (a deliberately torn client for
      robustness smoke tests).
  ocr stats <chip.ocr>
      Print the chip's Table-1-style statistics.
  ocr help
      Show this message.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The declarative argument table of one subcommand: its name, the
/// flags that take a value, and the bare switches. One parser serves
/// every subcommand; a new flag is one string in a table, not a new
/// hand-rolled loop.
#[derive(Clone, Copy, Debug)]
struct ArgSpec {
    command: &'static str,
    value_flags: &'static [&'static str],
    switch_flags: &'static [&'static str],
}

const GENERATE_SPEC: ArgSpec = ArgSpec {
    command: "generate",
    value_flags: &["--seed", "-o"],
    switch_flags: &[],
};

const ROUTE_SPEC: ArgSpec = ArgSpec {
    command: "route",
    value_flags: &[
        "--flow",
        "--order",
        "--svg",
        "--routes",
        "--stats-json",
        "--trace-out",
        "--max-steps",
        "--deadline-ms",
        "--checkpoint-out",
        "--checkpoint-every",
        "--resume",
        "--weights",
    ],
    switch_flags: &["--suite", "--stats", "--salvage"],
};

const VERIFY_SPEC: ArgSpec = ArgSpec {
    command: "verify",
    value_flags: &["--flow", "--routes"],
    switch_flags: &["--strict", "--suite"],
};

const CHAOS_SPEC: ArgSpec = ArgSpec {
    command: "chaos",
    value_flags: &["--seed", "--trials"],
    switch_flags: &[],
};

const SERVE_SPEC: ArgSpec = ArgSpec {
    command: "serve",
    value_flags: &[
        "--spool",
        "--manifest",
        "--out",
        "--journal",
        "--max-total-steps",
        "--max-concurrent",
        "--quantum",
        "--poll-ms",
        "--listen",
        "--addr-file",
        "--stage",
        "--max-conns",
        "--net-timeout-ms",
        "--net-idle-ms",
        "--max-frame-bytes",
        "--max-pending",
        "--tenant-rate",
        "--tenant-burst",
    ],
    switch_flags: &["--drain"],
};

const SUBMIT_SPEC: ArgSpec = ArgSpec {
    command: "submit",
    value_flags: &[
        "--addr",
        "--chip",
        "--name",
        "--flow",
        "--order",
        "--priority",
        "--max-steps",
        "--tenant",
        "--timeout-ms",
        "--tear-bytes",
    ],
    switch_flags: &["--salvage", "--verify", "--ping", "--shutdown"],
};

const STATS_SPEC: ArgSpec = ArgSpec {
    command: "stats",
    value_flags: &[],
    switch_flags: &[],
};

impl ArgSpec {
    /// Parses everything after the subcommand name. Unknown flags and
    /// value flags with a missing (or flag-like) value are usage errors
    /// — a typo must never be silently ignored.
    fn parse<'a>(&self, args: &'a [String]) -> Result<Flags<'a>, String> {
        let command = self.command;
        let mut flags = Flags {
            command,
            values: Vec::new(),
            switches: Vec::new(),
            positionals: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if let Some(&name) = self.value_flags.iter().find(|&&n| n == arg) {
                match args.get(i + 1).map(|s| s.as_str()) {
                    Some(value) if !value.starts_with('-') || value == "-" => {
                        flags.values.push((name, value));
                        i += 2;
                    }
                    _ => return Err(format!("{command}: flag `{name}` requires a value")),
                }
            } else if let Some(&name) = self.switch_flags.iter().find(|&&n| n == arg) {
                flags.switches.push(name);
                i += 1;
            } else if arg.starts_with('-') {
                return Err(format!("{command}: unknown flag `{arg}`"));
            } else {
                flags.positionals.push(arg);
                i += 1;
            }
        }
        Ok(flags)
    }
}

/// Parsed flags of one subcommand: `--name value` pairs, bare switches,
/// and non-flag positionals, in order of appearance.
#[derive(Debug)]
struct Flags<'a> {
    command: &'static str,
    values: Vec<(&'static str, &'a str)>,
    switches: Vec<&'static str>,
    positionals: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn value(&self, name: &str) -> Option<&'a str> {
        self.values
            .iter()
            .rev()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The flag's value parsed as `T`, with the normalized
    /// `"{command}: bad {flag}: {cause}"` error every subcommand shares.
    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name)
            .map(|s| {
                s.parse()
                    .map_err(|e: T::Err| format!("{}: bad {name}: {e}", self.command))
            })
            .transpose()
    }

    /// [`Flags::parsed`] with a default for an absent flag.
    fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.parsed(name)?.unwrap_or(default))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(|s| s.as_str()) {
        Some("generate") => generate(args),
        Some("route") => route(args),
        Some("verify") => verify(args),
        Some("chaos") => chaos(args),
        Some("serve") => serve_cmd(args),
        Some("submit") => submit_cmd(args),
        Some("stats") => stats(args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load(path: &str) -> Result<(Layout, RowPlacement), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (layout, placement) = parse_chip(&text).map_err(|e| format!("{path}: {e}"))?;
    let problems = layout.audit();
    if !problems.is_empty() {
        return Err(format!(
            "{path}: layout audit failed: {}",
            problems.join("; ")
        ));
    }
    let problems = placement.audit(&layout);
    if !problems.is_empty() {
        return Err(format!(
            "{path}: placement audit failed: {}",
            problems.join("; ")
        ));
    }
    Ok((layout, placement))
}

fn generate(args: &[String]) -> Result<(), String> {
    let flags = GENERATE_SPEC.parse(&args[1..])?;
    let which = *flags
        .positionals
        .first()
        .ok_or("generate: missing benchmark name")?;
    let seed: u64 = flags.parsed_or("--seed", 1)?;
    let chip = match which {
        "ami33" => suite::ami33_like(),
        "xerox" => suite::xerox_like(),
        "ex3" => suite::ex3_like(),
        "random" => small_random(8, 3, 4, 20, seed),
        other => return Err(format!("unknown benchmark `{other}`")),
    };
    let text = write_chip(&chip.layout, &chip.placement);
    match flags.value("-o") {
        Some(path) => {
            atomic_write(std::path::Path::new(path), &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} cells, {} nets, {} pins",
                chip.layout.cells.len(),
                chip.layout.nets.len(),
                chip.layout.total_pins()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn parse_flow(flags: &Flags) -> Result<FlowKind, String> {
    match flags.value("--flow") {
        None => Ok(FlowKind::OverCell),
        Some(name) => FlowKind::from_name(name).ok_or_else(|| format!("unknown flow `{name}`")),
    }
}

fn run_flow(
    kind: FlowKind,
    options: FlowOptions,
    layout: &Layout,
    placement: &RowPlacement,
) -> Result<FlowResult, String> {
    kind.build_with(options)
        .run(layout, placement)
        .map_err(|e| e.to_string())
}

/// Every (suite chip, flow) combination routed across the ocr-exec
/// pool; results come back in the same deterministic order regardless of
/// worker count.
fn suite_fanout(options: FlowOptions) -> Vec<(String, FlowKind, Result<FlowResult, String>)> {
    let chips: Vec<GeneratedChip> = suite::all();
    let combos: Vec<(usize, FlowKind)> = (0..chips.len())
        .flat_map(|c| FlowKind::ALL.into_iter().map(move |k| (c, k)))
        .collect();
    let results = ocr_exec::parallel_map(&combos, |&(c, kind)| {
        let chip = &chips[c];
        run_flow(kind, options, &chip.layout, &chip.placement)
    });
    combos
        .into_iter()
        .zip(results)
        .map(|((c, kind), res)| (chips[c].spec.name.clone(), kind, res))
        .collect()
}

/// Telemetry outputs requested on the `route` command line.
struct TelemetryOut<'a> {
    table: bool,
    stats_json: Option<&'a str>,
    trace_out: Option<&'a str>,
}

impl<'a> TelemetryOut<'a> {
    fn from_flags(flags: &Flags<'a>) -> Self {
        TelemetryOut {
            table: flags.has("--stats"),
            stats_json: flags.value("--stats-json"),
            trace_out: flags.value("--trace-out"),
        }
    }

    /// `true` when any output wants the flow run with telemetry on.
    fn wanted(&self) -> bool {
        self.table || self.stats_json.is_some() || self.trace_out.is_some()
    }

    /// Writes the requested machine-readable documents for the labeled
    /// runs (the `--stats` table is printed by the caller, per run).
    fn write(&self, runs: &[(String, FlowKind, ocr_obs::Telemetry)]) -> Result<(), String> {
        let flow_names: Vec<&'static str> = runs.iter().map(|&(_, kind, _)| kind.name()).collect();
        let labeled: Vec<ocr_obs::LabeledRun<'_>> = runs
            .iter()
            .zip(&flow_names)
            .map(|((chip, _, telemetry), &flow)| (chip.as_str(), flow, telemetry))
            .collect();
        if let Some(path) = self.stats_json {
            let text = ocr_obs::stats_json(&labeled);
            atomic_write(std::path::Path::new(path), &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        if let Some(path) = self.trace_out {
            let text = ocr_obs::chrome_trace(&labeled);
            atomic_write(std::path::Path::new(path), &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    }
}

/// Parses the run-control flags of `route` into a [`RunSession`] (plus
/// the resolved flow, which `--resume` may dictate). Validation of the
/// resume file against the loaded chip happens here: flow and chip
/// fingerprint must match before any routing starts.
fn parse_run_session(
    flags: &Flags,
    layout: &Layout,
    placement: &RowPlacement,
) -> Result<(FlowKind, RunSession, bool), String> {
    let max_steps: Option<u64> = flags.parsed("--max-steps")?;
    let deadline_ms: Option<u64> = flags.parsed("--deadline-ms")?;
    let every: usize = flags.parsed_or("--checkpoint-every", 1)?;
    if every == 0 {
        return Err("route: --checkpoint-every must be at least 1".into());
    }
    if flags.value("--checkpoint-every").is_some() && flags.value("--checkpoint-out").is_none() {
        return Err("route: --checkpoint-every requires --checkpoint-out".into());
    }
    let resume = match flags.value("--resume") {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let doc = parse_checkpoint(layout, &text).map_err(|e| format!("{p}: {e}"))?;
            Some(resume_from_doc(doc).map_err(|e| format!("{p}: {e}"))?)
        }
        None => None,
    };
    let kind = match (flags.value("--flow"), &resume) {
        (Some(name), _) => {
            let kind = FlowKind::from_name(name).ok_or_else(|| format!("unknown flow `{name}`"))?;
            if let Some(r) = &resume {
                if kind.name() != r.flow {
                    return Err(format!(
                        "route: --flow {} contradicts the checkpoint's flow `{}`",
                        kind.name(),
                        r.flow
                    ));
                }
            }
            kind
        }
        (None, Some(r)) => FlowKind::from_name(&r.flow)
            .ok_or_else(|| format!("checkpoint names unknown flow `{}`", r.flow))?,
        (None, None) => FlowKind::OverCell,
    };
    let chip_hash = fnv1a_64(&write_chip(layout, placement));
    if let Some(r) = &resume {
        if r.chip_hash != chip_hash {
            return Err(
                "route: the checkpoint was written for a different chip (fingerprint mismatch)"
                    .into(),
            );
        }
    }
    let mut control = RunControl::new();
    if let Some(budget) = max_steps {
        control = control.with_step_budget(budget);
    }
    if let Some(ms) = deadline_ms {
        control = control.with_deadline_in(std::time::Duration::from_millis(ms));
    }
    if let Some(r) = &resume {
        // Steps stay cumulative across an interruption, so a resumed
        // run under the same --max-steps trips immediately; drop or
        // raise the budget to make progress.
        control = control.resumed_at(r.steps);
    }
    let session = RunSession {
        control,
        checkpoint: flags.value("--checkpoint-out").map(|p| CheckpointSpec {
            path: p.into(),
            every,
            flow: kind.name().to_string(),
            chip_hash,
        }),
        resume,
    };
    let limited = max_steps.is_some() || deadline_ms.is_some();
    Ok((kind, session, limited))
}

/// What `--order NAME` asked for: one named strategy, or a `k`-wide
/// portfolio race.
enum OrderChoice {
    Strategy(NetOrdering),
    Portfolio(usize),
}

/// Parses `--order`: an `ocr-order-v1` strategy name or
/// `portfolio[:K]`.
fn parse_order(name: &str) -> Result<OrderChoice, String> {
    if let Some(rest) = name.strip_prefix("portfolio") {
        let k = match rest {
            "" => 4,
            _ => rest
                .strip_prefix(':')
                .and_then(|s| s.parse().ok())
                .filter(|&k| k >= 1)
                .ok_or(format!(
                    "route: bad --order: `{name}` takes portfolio[:K] with K >= 1"
                ))?,
        };
        return Ok(OrderChoice::Portfolio(k));
    }
    ordering_from_name(name)
        .map(OrderChoice::Strategy)
        .ok_or_else(|| {
            format!(
                "route: unknown ordering `{name}` (try longest, shortest, congestion, \
                 criticality, shuffle[:SEED] or portfolio[:K])"
            )
        })
}

fn route(args: &[String]) -> Result<(), String> {
    let flags = ROUTE_SPEC.parse(&args[1..])?;
    let telemetry = TelemetryOut::from_flags(&flags);
    if flags.has("--suite") {
        for f in [
            "--order",
            "--max-steps",
            "--deadline-ms",
            "--checkpoint-out",
            "--checkpoint-every",
            "--resume",
            "--weights",
        ] {
            if flags.value(f).is_some() {
                return Err(format!(
                    "route: {f} applies to a single-chip route, not --suite"
                ));
            }
        }
        return route_suite(&flags, &telemetry);
    }
    let order = flags.value("--order").map(parse_order).transpose()?;
    if let Some(OrderChoice::Portfolio(_)) = order {
        // The racer manages one RunControl per strategy internally and
        // settles interrupted attempts itself; an outer budget or a
        // checkpointed resume has no deterministic meaning for it.
        for f in [
            "--max-steps",
            "--deadline-ms",
            "--checkpoint-out",
            "--checkpoint-every",
            "--resume",
        ] {
            if flags.value(f).is_some() {
                return Err(format!(
                    "route: {f} cannot be combined with --order portfolio \
                     (the racer runs its own controls)"
                ));
            }
        }
    }
    let path = *flags
        .positionals
        .first()
        .ok_or("route: missing chip file")?;
    let (layout, placement) = load(path)?;
    let (kind, session, limited) = parse_run_session(&flags, &layout, &placement)?;
    if order.is_some() && kind != FlowKind::OverCell {
        return Err(format!(
            "route: --order applies to the overcell flow, not `{}`",
            kind.name()
        ));
    }
    let weights = flags
        .value("--weights")
        .map(|spec| CostWeights::parse(spec).map_err(|e| format!("route: bad --weights: {e}")))
        .transpose()?;
    if weights.is_some() && kind != FlowKind::OverCell {
        return Err(format!(
            "route: --weights applies to the overcell flow, not `{}`",
            kind.name()
        ));
    }
    let mut level_b = LevelBConfig::default();
    if let Some(w) = weights {
        level_b.weights = w;
    }
    let options = FlowOptions::new()
        .telemetry(telemetry.wanted())
        // A checkpointed salvage run resumes as a salvage run even if
        // --salvage is not repeated on the resume command line.
        .salvage(flags.has("--salvage") || session.resume.as_ref().is_some_and(|r| r.salvage));
    let (result, portfolio) = match order {
        Some(OrderChoice::Portfolio(k)) => {
            // The racer clones `level_b` per strategy, so CLI weights
            // apply to every raced ordering.
            let flow = OverCellFlow {
                options,
                level_b,
                ..OverCellFlow::default()
            };
            let (result, report) = flow
                .run_portfolio(&layout, &placement, k)
                .map_err(|e| e.to_string())?;
            (result, Some(report))
        }
        Some(OrderChoice::Strategy(ordering)) => {
            level_b.ordering = ordering;
            let result = kind
                .build_with_level_b(options, level_b)
                .run_controlled(&layout, &placement, &session)
                .map_err(|e| e.to_string())?;
            (result, None)
        }
        None => {
            let result = kind
                .build_with_level_b(options, level_b)
                .run_controlled(&layout, &placement, &session)
                .map_err(|e| e.to_string())?;
            (result, None)
        }
    };
    let tripped = session.control.tripped();
    let errors = validate_routed_design(&result.layout, &result.design);
    println!("flow: {kind}");
    if let Some(report) = &portfolio {
        println!(
            "portfolio: raced {} ordering strategies ({})",
            report.outcomes.len(),
            overcell_router::core::ORDER_API
        );
        for (j, o) in report.outcomes.iter().enumerate() {
            match o.settled {
                Some((unrouted, steps)) => {
                    let marker = if j == report.winner {
                        "  << winner"
                    } else {
                        ""
                    };
                    println!(
                        "  [{j}] {:<14} unrouted {unrouted}, steps {steps}{marker}",
                        o.name
                    );
                }
                None => println!(
                    "  [{j}] {:<14} lost (needed more steps than the winner)",
                    o.name
                ),
            }
        }
        println!(
            "portfolio: winner {} (strategy {}, unrouted {}, steps {})",
            report.winner_name(),
            report.winner,
            report.winner_unrouted,
            report.winner_steps
        );
    }
    println!("die:  {}", result.layout.die);
    println!("metrics: {}", result.metrics);
    println!(
        "terminal via cuts (not counted above): {}",
        result.metrics.terminal_via_cuts
    );
    if let Some(stats) = &result.stats {
        println!("level B: {stats}");
    }
    if let Some(d) = &result.degradation {
        println!("degradation: {d}");
    }
    if errors.is_empty() {
        println!("validation: clean");
    } else {
        println!("validation: {} errors (first: {})", errors.len(), errors[0]);
    }
    if let Some(reason) = tripped {
        println!(
            "run control: tripped ({reason}) after {} steps; unfinished nets are \
             degraded, committed wiring is verified",
            session.control.steps()
        );
    } else if limited {
        println!(
            "run control: completed within limits ({} steps)",
            session.control.steps()
        );
    }
    if let Some(svg_path) = flags.value("--svg") {
        let svg = render_svg(&result.layout, &result.design);
        atomic_write(std::path::Path::new(svg_path), &svg)
            .map_err(|e| format!("{svg_path}: {e}"))?;
        eprintln!("wrote {svg_path}");
    }
    if let Some(routes_path) = flags.value("--routes") {
        let text = write_routes(&result.layout, &result.design);
        atomic_write(std::path::Path::new(routes_path), &text)
            .map_err(|e| format!("{routes_path}: {e}"))?;
        eprintln!("wrote {routes_path}");
    }
    if telemetry.wanted() {
        let chip = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_string();
        let snapshot = result
            .telemetry
            .expect("flow ran with options.telemetry set, snapshot attached");
        if telemetry.table {
            println!("{}", snapshot.render_table());
        }
        telemetry.write(&[(chip, kind, snapshot)])?;
    }
    if !errors.is_empty() {
        return Err("routed design failed validation".into());
    }
    Ok(())
}

fn route_suite(flags: &Flags, telemetry: &TelemetryOut) -> Result<(), String> {
    if !flags.positionals.is_empty() || flags.value("--flow").is_some() {
        return Err("route: --suite routes every flow on every suite chip; \
                    it takes no chip file or --flow"
            .into());
    }
    let options = FlowOptions::new()
        .telemetry(telemetry.wanted())
        .salvage(flags.has("--salvage"));
    let mut failures = 0usize;
    let mut runs: Vec<(String, FlowKind, ocr_obs::Telemetry)> = Vec::new();
    for (chip, kind, res) in suite_fanout(options) {
        match res {
            Ok(result) => {
                let errors = validate_routed_design(&result.layout, &result.design);
                let status = if errors.is_empty() {
                    "clean".to_string()
                } else {
                    failures += 1;
                    format!("{} validation errors", errors.len())
                };
                println!("{chip:>8} {kind:>9}: {}  [{status}]", result.metrics);
                if let Some(snapshot) = result.telemetry {
                    if telemetry.table {
                        println!("{}", snapshot.render_table());
                    }
                    runs.push((chip, kind, snapshot));
                }
            }
            Err(e) => {
                failures += 1;
                println!("{chip:>8} {kind:>9}: FAILED: {e}");
            }
        }
    }
    telemetry.write(&runs)?;
    if failures > 0 {
        return Err(format!("{failures} suite combination(s) failed"));
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let flags = VERIFY_SPEC.parse(&args[1..])?;
    let strict = flags.has("--strict");
    if flags.has("--suite") {
        return verify_suite(&flags, strict);
    }
    let path = *flags
        .positionals
        .first()
        .ok_or("verify: missing chip file")?;
    let (layout, placement) = load(path)?;
    let report = match flags.value("--routes") {
        Some(routes_path) => {
            // Audit existing geometry against the chip file's layout and
            // die exactly as given — the routes must use the same
            // coordinates as the chip file.
            let text =
                std::fs::read_to_string(routes_path).map_err(|e| format!("{routes_path}: {e}"))?;
            let design = parse_routes(&layout, &text).map_err(|e| format!("{routes_path}: {e}"))?;
            let opts = if strict {
                VerifyOptions::strict()
            } else {
                VerifyOptions::default()
            };
            verify_with(&layout, &design, &opts)
        }
        None => {
            let kind = parse_flow(&flags)?;
            let options = FlowOptions::new().verify(true).strict(strict);
            let result = run_flow(kind, options, &layout, &placement)?;
            println!("flow: {kind}");
            result
                .verify
                .expect("flow ran with options.verify set, report attached")
        }
    };
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "verification found {} violation(s)",
            report.violations.len()
        ))
    }
}

fn verify_suite(flags: &Flags, strict: bool) -> Result<(), String> {
    if !flags.positionals.is_empty()
        || flags.value("--flow").is_some()
        || flags.value("--routes").is_some()
    {
        return Err("verify: --suite verifies every flow on every suite chip; \
                    it takes no chip file, --flow or --routes"
            .into());
    }
    let options = FlowOptions::new().verify(true).strict(strict);
    let mut unclean = 0usize;
    for (chip, kind, res) in suite_fanout(options) {
        match res {
            Ok(result) => {
                let report = result
                    .verify
                    .expect("flow ran with options.verify set, report attached");
                if report.is_clean() {
                    println!(
                        "{chip:>8} {kind:>9}: clean ({} nets verified)",
                        report.nets.len()
                    );
                } else {
                    unclean += 1;
                    println!(
                        "{chip:>8} {kind:>9}: {} violation(s)",
                        report.violations.len()
                    );
                }
            }
            Err(e) => {
                unclean += 1;
                println!("{chip:>8} {kind:>9}: FAILED: {e}");
            }
        }
    }
    if unclean > 0 {
        return Err(format!("{unclean} suite combination(s) unclean"));
    }
    Ok(())
}

/// What one chaos trial observed (returned through the isolated pool,
/// so a panicking trial produces a `Poisoned` outcome instead).
struct TrialReport {
    chip: String,
    salvaged: usize,
    degraded: usize,
    poisoned_nets: usize,
    oracle_clean: bool,
}

/// One chaos trial: corrupt a serialization and feed it to the parser
/// (must never panic), perturb a suite chip with sealed cells and
/// terminals, then route it under salvage with the armed fault plan and
/// check the salvaged result against the oracle.
fn chaos_trial(seed: u64, t: usize, chips: &[GeneratedChip]) -> Result<TrialReport, String> {
    // The plan's `chaos.trial` rule carries two guaranteed fires, so
    // this trial panics on both its attempts and is deterministically
    // reported as a poisoned task at any worker count.
    if t == 0 {
        fault::point("chaos.trial");
    }
    let trial_seed = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let base = &chips[t % chips.len()];
    // Malformed-input probe: a corrupted chip file must parse to Ok or
    // Err, never panic (a panic here poisons the trial — a finding).
    let corrupted = fault::corrupt_text(&write_chip(&base.layout, &base.placement), trial_seed, 24);
    let _ = parse_chip(&corrupted);
    // Perturb the routing problem: sealed over-cell cells and terminals
    // force detours, rip-up storms and doomed nets.
    let mut layout = base.layout.clone();
    fault::seal_random_cells(&mut layout, trial_seed, 2);
    fault::seal_random_terminals(&mut layout, trial_seed.wrapping_add(1), 2);
    let options = FlowOptions::new().salvage(true).verify(true);
    let result = run_flow(FlowKind::OverCell, options, &layout, &base.placement)?;
    let report = result
        .verify
        .expect("flow ran with options.verify set, report attached");
    let d = result
        .degradation
        .expect("flow ran with options.salvage set, report attached");
    Ok(TrialReport {
        chip: base.spec.name.clone(),
        salvaged: d.salvaged_routes,
        degraded: d.nets.len(),
        poisoned_nets: d.poisoned(),
        oracle_clean: report.is_clean(),
    })
}

fn chaos(args: &[String]) -> Result<(), String> {
    let flags = CHAOS_SPEC.parse(&args[1..])?;
    if !flags.positionals.is_empty() {
        return Err("chaos: takes no chip file (trials run over the suite)".into());
    }
    let seed: u64 = flags.parsed_or("--seed", 1)?;
    let trials: usize = flags.parsed_or("--trials", 8)?;
    if trials == 0 {
        return Err("chaos: --trials must be at least 1".into());
    }
    let chips = suite::all();
    let plan = fault::chaos_plan(seed);
    let idx: Vec<usize> = (0..trials).collect();
    let collector = ocr_obs::Collector::new();
    // Injected panics are expected here and reported per trial; keep
    // the default hook from spraying backtraces over the summary.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = ocr_obs::with_collector(&collector, || {
        fault::with_plan(&plan, || {
            ocr_exec::parallel_map_isolated(&idx, |&t| chaos_trial(seed, t, &chips))
        })
    });
    std::panic::set_hook(hook);
    let mut poisoned_tasks = 0usize;
    let mut failures = 0usize;
    for (t, outcome) in outcomes.iter().enumerate() {
        match outcome {
            ocr_exec::TaskOutcome::Poisoned { message } => {
                poisoned_tasks += 1;
                println!("trial {t:>2}: poisoned (isolated): {message}");
            }
            ocr_exec::TaskOutcome::Done {
                value: Ok(r),
                retried,
            } => {
                let status = if r.oracle_clean {
                    "oracle clean"
                } else {
                    failures += 1;
                    "ORACLE UNCLEAN"
                };
                let retry = if *retried { ", retried" } else { "" };
                println!(
                    "trial {t:>2} [{:>8}]: salvaged {} routes, degraded {} nets \
                     ({} poisoned{retry})  [{status}]",
                    r.chip, r.salvaged, r.degraded, r.poisoned_nets
                );
            }
            ocr_exec::TaskOutcome::Done {
                value: Err(e),
                retried: _,
            } => {
                failures += 1;
                println!("trial {t:>2}: FAILED: {e}");
            }
        }
    }
    let snapshot = collector.snapshot();
    println!(
        "chaos: {trials} trial(s), {poisoned_tasks} poisoned task(s), \
         {} fault(s) injected, tasks.poisoned={}, nets.salvaged={}",
        snapshot.counter("fault.injected").unwrap_or(0),
        snapshot.counter("tasks.poisoned").unwrap_or(0),
        snapshot.counter("nets.salvaged").unwrap_or(0),
    );
    if failures > 0 {
        return Err(format!("{failures} chaos trial(s) unclean"));
    }
    Ok(())
}

/// `ocr serve`: batch routing service over a spool directory and/or an
/// `ocr-jobs-v1` manifest (see USAGE for the scheduling model).
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use overcell_router::serve::{
        manifest_jobs, run_jobs, serve, JobStatus, NetConfig, NetIntake, PairedIntake, QuotaConfig,
        ServeConfig, ServeError, SpoolIntake, NET_COUNTERS,
    };
    let flags = SERVE_SPEC.parse(&args[1..])?;
    if let Some(stray) = flags.positionals.first() {
        return Err(format!("serve: unexpected argument `{stray}`"));
    }
    let spool = flags.value("--spool");
    let manifest = flags.value("--manifest");
    let listen = flags.value("--listen");
    if spool.is_none() && manifest.is_none() && listen.is_none() {
        return Err("serve: nothing to serve (pass --spool, --manifest, and/or --listen)".into());
    }
    let max_total_steps: Option<u64> = flags.parsed("--max-total-steps")?;
    let max_concurrent: usize = flags.parsed_or("--max-concurrent", 2)?;
    let quantum: u64 = flags.parsed_or("--quantum", 256)?;
    let poll_ms: u64 = flags.parsed_or("--poll-ms", 200)?;
    if flags.has("--drain") && spool.is_none() {
        return Err("serve: --drain requires --spool (a manifest is one-shot already)".into());
    }
    let net_config = match listen {
        Some(addr) => {
            let quota = match (
                flags.parsed::<u64>("--tenant-rate")?,
                flags.parsed::<u64>("--tenant-burst")?,
            ) {
                (None, None) => None,
                (rate, burst) => Some(QuotaConfig {
                    rate_per_sec: rate.unwrap_or(0),
                    burst: burst.unwrap_or(1),
                }),
            };
            // Staged chips must survive a kill-restart when journaling:
            // default the stage under --out so recovery can reload them.
            let stage = flags
                .value("--stage")
                .map(std::path::PathBuf::from)
                .or_else(|| {
                    flags
                        .value("--out")
                        .map(|out| std::path::Path::new(out).join("net-stage"))
                });
            Some(NetConfig {
                addr: addr.to_string(),
                max_conns: flags.parsed_or("--max-conns", 8)?,
                io_timeout_ms: flags.parsed_or("--net-timeout-ms", 5000)?,
                idle_timeout_ms: flags.parsed_or("--net-idle-ms", 10_000)?,
                max_frame: flags.parsed_or("--max-frame-bytes", 1 << 20)?,
                max_pending: flags.parsed_or("--max-pending", 64)?,
                poll_ms,
                stage,
                quota,
            })
        }
        None => None,
    };
    let config = ServeConfig {
        out: flags.value("--out").map(std::path::PathBuf::from),
        max_total_steps,
        max_concurrent,
        quantum,
        journal: flags.value("--journal").map(std::path::PathBuf::from),
    };
    let initial = match manifest {
        Some(path) => {
            manifest_jobs(std::path::Path::new(path)).map_err(|e| format!("serve: {e}"))?
        }
        None => Vec::new(),
    };
    // Announces a bound listener: printed for humans, written to
    // --addr-file for scripts that asked for an ephemeral port.
    let announce = |addr: std::net::SocketAddr| -> Result<(), ServeError> {
        println!("serve: listening on {addr}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if let Some(path) = flags.value("--addr-file") {
            let path = std::path::Path::new(path);
            atomic_write(path, &format!("{addr}\n")).map_err(|e| ServeError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?;
        }
        Ok(())
    };
    // Service-level telemetry (journal/replay/retry counters and the
    // run span) — written as `ocr-stats-v1` next to the results.
    let collector = ocr_obs::Collector::new();
    let served = ocr_obs::with_collector(&collector, || {
        let _span = ocr_obs::span("serve.run");
        // Declare the durability and network counters up front so
        // `serve-stats.json` always carries them — 0 on a clean run,
        // nonzero after a recovery, healed fault, or shed client.
        // `obs-check --service --require NAME` checks presence, not
        // magnitude.
        for name in [
            "journal.append",
            "journal.replayed",
            "recover.jobs_resumed",
            "io.retries",
        ] {
            ocr_obs::count(name, 0);
        }
        for name in NET_COUNTERS {
            ocr_obs::count(name, 0);
        }
        match (spool, net_config) {
            (Some(dir), Some(net)) => {
                let spool_intake =
                    SpoolIntake::new(std::path::Path::new(dir), poll_ms, flags.has("--drain"));
                let net_intake = match NetIntake::bind(net).and_then(|n| {
                    announce(n.local_addr())?;
                    Ok(n)
                }) {
                    Ok(intake) => intake,
                    Err(e) => return Err(e),
                };
                let mut intake = PairedIntake::new(spool_intake, net_intake);
                let report = serve(initial, &mut intake, &config);
                report.map(|r| (r, intake.take_error()))
            }
            (Some(dir), None) => {
                let mut intake =
                    SpoolIntake::new(std::path::Path::new(dir), poll_ms, flags.has("--drain"));
                let report = serve(initial, &mut intake, &config);
                report.map(|r| (r, intake.take_error()))
            }
            (None, Some(net)) => {
                let mut intake = NetIntake::bind(net).and_then(|n| {
                    announce(n.local_addr())?;
                    Ok(n)
                })?;
                let report = serve(initial, &mut intake, &config);
                report.map(|r| (r, None))
            }
            (None, None) => run_jobs(initial, &config).map(|r| (r, None)),
        }
    });
    let (report, intake_error) = served.map_err(|e| format!("serve: {e}"))?;
    if let Some(out) = flags.value("--out") {
        let snapshot = collector.snapshot();
        let text = ocr_obs::stats_json(&[("serve", "service", &snapshot)]);
        let path = std::path::Path::new(out).join("serve-stats.json");
        overcell_router::io::atomic_write(&path, &text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    // The engine drained and answered every job even if the spool went
    // away mid-run: print the admission log and per-job outcomes before
    // surfacing the intake error.
    for line in &report.log {
        println!("{line}");
    }
    let failed = report
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Failed)
        .count();
    if let Some(e) = intake_error {
        return Err(format!("serve: {e}"));
    }
    if failed > 0 {
        return Err(format!("serve: {failed} job(s) failed"));
    }
    Ok(())
}

/// `ocr submit`: a small `ocr-wire-v1` client for a running
/// `ocr serve --listen` daemon — submits one chip (sent inline, no
/// shared filesystem needed), pings, or asks the service to drain.
/// `--tear-bytes` deliberately tears the frame mid-write and
/// disconnects, for robustness smoke tests.
fn submit_cmd(args: &[String]) -> Result<(), String> {
    use overcell_router::io::job::JobSpec;
    use overcell_router::io::wire::{self, Response};
    use overcell_router::serve::{client_connect, client_request};
    let flags = SUBMIT_SPEC.parse(&args[1..])?;
    if let Some(stray) = flags.positionals.first() {
        return Err(format!("submit: unexpected argument `{stray}`"));
    }
    let addr = flags.value("--addr").ok_or("submit: missing --addr")?;
    let timeout = std::time::Duration::from_millis(flags.parsed_or("--timeout-ms", 10_000)?);
    let stream = client_connect(addr, timeout).map_err(|e| format!("submit: {addr}: {e}"))?;
    if flags.has("--ping") {
        return match client_request(&stream, "ping") {
            Ok(Response::Pong) => {
                println!("pong");
                Ok(())
            }
            Ok(other) => Err(format!("submit: {}", wire::response_payload(&other))),
            Err(e) => Err(format!("submit: {e}")),
        };
    }
    if flags.has("--shutdown") {
        return match client_request(&stream, "shutdown") {
            Ok(Response::Closing) => {
                println!("closing");
                Ok(())
            }
            Ok(other) => Err(format!("submit: {}", wire::response_payload(&other))),
            Err(e) => Err(format!("submit: {e}")),
        };
    }
    let chip_path = flags
        .value("--chip")
        .ok_or("submit: missing --chip (or --ping/--shutdown)")?;
    let chip_text =
        std::fs::read_to_string(chip_path).map_err(|e| format!("submit: {chip_path}: {e}"))?;
    let name = match flags.value("--name") {
        Some(name) => name.to_string(),
        None => std::path::Path::new(chip_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
            .ok_or("submit: cannot derive a job name from --chip; pass --name")?,
    };
    let mut spec = JobSpec::new(name, "-");
    if let Some(flow) = flags.value("--flow") {
        spec.flow = flow.to_string();
    }
    spec.order = flags.value("--order").map(str::to_string);
    spec.priority = flags.parsed_or("--priority", 0)?;
    spec.max_steps = flags.parsed("--max-steps")?;
    spec.salvage = flags.has("--salvage");
    spec.verify = flags.has("--verify");
    spec.tenant = flags.value("--tenant").map(str::to_string);
    let payload = wire::submit_payload(&spec, &chip_text);
    if let Some(n) = flags.parsed::<usize>("--tear-bytes")? {
        // Mid-frame disconnect on purpose: write a strict prefix of
        // the frame and hang up. The daemon must answer its other
        // clients untroubled.
        let bytes = wire::frame(&payload);
        let n = n.min(bytes.len().saturating_sub(1)).max(1);
        use std::io::Write as _;
        (&stream)
            .write_all(&bytes[..n])
            .map_err(|e| format!("submit: {e}"))?;
        let _ = stream.shutdown(std::net::Shutdown::Both);
        println!("submit: tore the frame after {n} byte(s)");
        return Ok(());
    }
    match client_request(&stream, &payload).map_err(|e| format!("submit: {e}"))? {
        Response::Accepted(name) => {
            println!("accepted {name}");
            Ok(())
        }
        other => Err(format!("submit: {}", wire::response_payload(&other))),
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = STATS_SPEC.parse(&args[1..])?;
    let path = *flags
        .positionals
        .first()
        .ok_or("stats: missing chip file")?;
    let (layout, placement) = load(path)?;
    let level_a: Vec<_> = layout
        .net_ids()
        .filter(|&n| {
            layout.net(n).class.is_level_a_default() || layout.net(n).class == NetClass::Power
        })
        .collect();
    let m = ChipMetrics::of(path, &layout, &level_a);
    println!("{m}");
    println!("placement: {placement}");
    println!("die: {} (area {})", layout.die, layout.die.area());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{
        parse_order, run, OrderChoice, CHAOS_SPEC, GENERATE_SPEC, ROUTE_SPEC, SERVE_SPEC,
        SUBMIT_SPEC, VERIFY_SPEC,
    };

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        let args = argv(&["chip.ocr", "--bogus"]);
        let err = ROUTE_SPEC.parse(&args).unwrap_err();
        assert_eq!(err, "route: unknown flag `--bogus`");
    }

    #[test]
    fn value_flags_require_a_value() {
        for args in [argv(&["chip.ocr", "--flow"]), argv(&["--flow", "--svg"])] {
            let err = ROUTE_SPEC.parse(&args).unwrap_err();
            assert_eq!(err, "route: flag `--flow` requires a value");
        }
    }

    #[test]
    fn flags_values_switches_and_positionals_parse() {
        let args = argv(&["chip.ocr", "--flow", "channel2", "--strict"]);
        let flags = VERIFY_SPEC.parse(&args).expect("parses");
        assert_eq!(flags.positionals, vec!["chip.ocr"]);
        assert_eq!(flags.value("--flow"), Some("channel2"));
        assert!(flags.has("--strict"));
        assert!(!flags.has("--suite"));
    }

    #[test]
    fn dash_is_a_legal_value() {
        let args = argv(&["-o", "-"]);
        let flags = GENERATE_SPEC.parse(&args).expect("parses");
        assert_eq!(flags.value("-o"), Some("-"));
    }

    /// Golden strings: every subcommand reports a bad numeric value with
    /// the same normalized `"{command}: bad {flag}: {cause}"` shape the
    /// hand-rolled loops used to produce.
    #[test]
    fn bad_value_errors_keep_their_exact_strings() {
        let cause = "x".parse::<u64>().unwrap_err().to_string();
        let cases: &[(&[&str], &str)] = &[
            (
                &["generate", "ami33", "--seed", "x"],
                "generate: bad --seed:",
            ),
            (&["chaos", "--seed", "x"], "chaos: bad --seed:"),
            (&["chaos", "--trials", "x"], "chaos: bad --trials:"),
            (
                &["serve", "--spool", "nowhere", "--quantum", "x"],
                "serve: bad --quantum:",
            ),
            (
                &["serve", "--spool", "nowhere", "--max-concurrent", "x"],
                "serve: bad --max-concurrent:",
            ),
        ];
        for (args, prefix) in cases {
            let err = run(&argv(args)).unwrap_err();
            assert_eq!(err, format!("{prefix} {cause}"), "args {args:?}");
        }
    }

    #[test]
    fn route_flag_parse_errors_come_from_the_shared_helper() {
        // `route` loads the chip before parsing run-control values, so
        // drive the typed getter directly against the route spec.
        let args = argv(&["chip.ocr", "--max-steps", "x"]);
        let flags = ROUTE_SPEC.parse(&args).expect("parses");
        let cause = "x".parse::<u64>().unwrap_err().to_string();
        let err = flags.parsed::<u64>("--max-steps").unwrap_err();
        assert_eq!(err, format!("route: bad --max-steps: {cause}"));
        let ok = argv(&["chip.ocr", "--max-steps", "12"]);
        let flags = ROUTE_SPEC.parse(&ok).expect("parses");
        assert_eq!(flags.parsed::<u64>("--max-steps"), Ok(Some(12)));
        assert_eq!(flags.parsed_or::<u64>("--deadline-ms", 7), Ok(7));
    }

    #[test]
    fn every_spec_parses_its_own_flags() {
        for spec in [
            GENERATE_SPEC,
            ROUTE_SPEC,
            VERIFY_SPEC,
            CHAOS_SPEC,
            SERVE_SPEC,
            SUBMIT_SPEC,
        ] {
            for name in spec.value_flags {
                let args = argv(&[name, "1"]);
                let flags = spec.parse(&args).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(flags.value(name), Some("1"), "{name}");
            }
            for name in spec.switch_flags {
                let args = argv(&[name]);
                let flags = spec.parse(&args).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(flags.has(name), "{name}");
            }
        }
    }

    #[test]
    fn order_flag_parses_strategies_and_portfolio() {
        assert!(matches!(
            parse_order("portfolio"),
            Ok(OrderChoice::Portfolio(4))
        ));
        assert!(matches!(
            parse_order("portfolio:7"),
            Ok(OrderChoice::Portfolio(7))
        ));
        for name in ["longest", "congestion", "criticality", "shuffle:3"] {
            assert!(matches!(parse_order(name), Ok(OrderChoice::Strategy(_))));
        }
        for bad in ["portfolio:0", "portfolio:x", "portfolio:", "fastest"] {
            assert!(parse_order(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn order_flag_combinations_are_validated() {
        let err = run(&argv(&["route", "--suite", "--order", "portfolio"])).unwrap_err();
        assert_eq!(
            err,
            "route: --order applies to a single-chip route, not --suite"
        );
        let err = run(&argv(&[
            "route",
            "chip.ocr",
            "--order",
            "portfolio",
            "--max-steps",
            "9",
        ]))
        .unwrap_err();
        assert_eq!(
            err,
            "route: --max-steps cannot be combined with --order portfolio \
             (the racer runs its own controls)"
        );
    }
}
