//! `ocr` — command-line driver for the over-cell router.
//!
//! ```text
//! ocr generate <ami33|xerox|ex3|random> [--seed N] [-o chip.ocr]
//! ocr route <chip.ocr> [--flow overcell|channel2|channel3|channel4]
//!                      [--svg out.svg] [--routes out.txt]
//! ocr verify <chip.ocr> [--flow ...] [--routes in.txt] [--strict]
//! ocr stats <chip.ocr>
//! ```

use overcell_router::core::{
    FourLayerChannelFlow, OverCellFlow, ThreeLayerChannelFlow, TwoLayerChannelFlow,
};
use overcell_router::gen::{random::small_random, suite};
use overcell_router::io::{parse_chip, parse_routes, write_chip, write_routes};
use overcell_router::netlist::{
    validate_routed_design, ChipMetrics, Layout, NetClass, RowPlacement,
};
use overcell_router::render::render_svg;
use overcell_router::verify::{verify_with, VerifyOptions};
use std::process::ExitCode;

const USAGE: &str = "\
ocr — multi-layer over-cell router (Katsadas & Shen, DAC 1990)

USAGE:
  ocr generate <ami33|xerox|ex3|random> [--seed N] [-o FILE]
      Generate a benchmark chip and write it as .ocr text (stdout by
      default).
  ocr route <chip.ocr> [--flow overcell|channel2|channel3|channel4]
                       [--svg FILE] [--routes FILE]
      Route the chip with the selected flow (default: overcell), print
      metrics, optionally write an SVG and the routed geometry.
  ocr verify <chip.ocr> [--flow overcell|channel2|channel3|channel4]
                        [--routes FILE] [--strict]
      Run the independent ocr-verify oracle. Routes the chip with the
      selected flow (default: overcell), or, with --routes, audits
      existing routed geometry against the chip file's layout as-is.
      --strict checks full drawn-width spacing on all four layers.
      Prints the report; exits non-zero when violations are found.
  ocr stats <chip.ocr>
      Print the chip's Table-1-style statistics.
  ocr help
      Show this message.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(|s| s.as_str()) {
        Some("generate") => generate(args),
        Some("route") => route(args),
        Some("verify") => verify(args),
        Some("stats") => stats(args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load(path: &str) -> Result<(Layout, RowPlacement), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (layout, placement) = parse_chip(&text).map_err(|e| format!("{path}: {e}"))?;
    let problems = layout.audit();
    if !problems.is_empty() {
        return Err(format!(
            "{path}: layout audit failed: {}",
            problems.join("; ")
        ));
    }
    let problems = placement.audit(&layout);
    if !problems.is_empty() {
        return Err(format!(
            "{path}: placement audit failed: {}",
            problems.join("; ")
        ));
    }
    Ok((layout, placement))
}

fn generate(args: &[String]) -> Result<(), String> {
    let which = args.get(1).ok_or("generate: missing benchmark name")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    let chip = match which.as_str() {
        "ami33" => suite::ami33_like(),
        "xerox" => suite::xerox_like(),
        "ex3" => suite::ex3_like(),
        "random" => small_random(8, 3, 4, 20, seed),
        other => return Err(format!("unknown benchmark `{other}`")),
    };
    let text = write_chip(&chip.layout, &chip.placement);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} cells, {} nets, {} pins",
                chip.layout.cells.len(),
                chip.layout.nets.len(),
                chip.layout.total_pins()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn run_flow(
    flow_name: &str,
    layout: &Layout,
    placement: &RowPlacement,
) -> Result<overcell_router::core::FlowResult, String> {
    match flow_name {
        "overcell" => OverCellFlow::default()
            .run(layout, placement)
            .map_err(|e| e.to_string()),
        "channel2" => TwoLayerChannelFlow::default()
            .run(layout, placement)
            .map_err(|e| e.to_string()),
        "channel3" => ThreeLayerChannelFlow::default()
            .run(layout, placement)
            .map_err(|e| e.to_string()),
        "channel4" => FourLayerChannelFlow::default()
            .run(layout, placement)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown flow `{other}`")),
    }
}

fn route(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("route: missing chip file")?;
    let (layout, placement) = load(path)?;
    let flow_name = flag_value(args, "--flow").unwrap_or("overcell");
    let result = run_flow(flow_name, &layout, &placement)?;
    let errors = validate_routed_design(&result.layout, &result.design);
    println!("flow: {flow_name}");
    println!("die:  {}", result.layout.die);
    println!("metrics: {}", result.metrics);
    println!(
        "terminal via cuts (not counted above): {}",
        result.metrics.terminal_via_cuts
    );
    if let Some(stats) = &result.stats {
        println!("level B: {stats}");
    }
    if errors.is_empty() {
        println!("validation: clean");
    } else {
        println!("validation: {} errors (first: {})", errors.len(), errors[0]);
    }
    if let Some(svg_path) = flag_value(args, "--svg") {
        let svg = render_svg(&result.layout, &result.design);
        std::fs::write(svg_path, svg).map_err(|e| format!("{svg_path}: {e}"))?;
        eprintln!("wrote {svg_path}");
    }
    if let Some(routes_path) = flag_value(args, "--routes") {
        let text = write_routes(&result.layout, &result.design);
        std::fs::write(routes_path, text).map_err(|e| format!("{routes_path}: {e}"))?;
        eprintln!("wrote {routes_path}");
    }
    if !errors.is_empty() {
        return Err("routed design failed validation".into());
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("verify: missing chip file")?;
    let (layout, placement) = load(path)?;
    let opts = if args.iter().any(|a| a == "--strict") {
        VerifyOptions::strict()
    } else {
        VerifyOptions::default()
    };
    let (layout, design) = match flag_value(args, "--routes") {
        Some(routes_path) => {
            // Audit existing geometry against the chip file's layout and
            // die exactly as given — the routes must use the same
            // coordinates as the chip file.
            let text =
                std::fs::read_to_string(routes_path).map_err(|e| format!("{routes_path}: {e}"))?;
            let design = parse_routes(&layout, &text).map_err(|e| format!("{routes_path}: {e}"))?;
            (layout, design)
        }
        None => {
            let flow_name = flag_value(args, "--flow").unwrap_or("overcell");
            let result = run_flow(flow_name, &layout, &placement)?;
            println!("flow: {flow_name}");
            (result.layout, result.design)
        }
    };
    let report = verify_with(&layout, &design, &opts);
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "verification found {} violation(s)",
            report.violations.len()
        ))
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("stats: missing chip file")?;
    let (layout, placement) = load(path)?;
    let level_a: Vec<_> = layout
        .net_ids()
        .filter(|&n| {
            layout.net(n).class.is_level_a_default() || layout.net(n).class == NetClass::Power
        })
        .collect();
    let m = ChipMetrics::of(path.as_str(), &layout, &level_a);
    println!("{m}");
    println!("placement: {placement}");
    println!("die: {} (area {})", layout.die, layout.die.area());
    Ok(())
}
