//! Property-based tests on the geometry substrate.

use overcell_router::geom::{manhattan, Dir, Interval, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_points(a, b))
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(a, b)| Interval::new(a, b))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(manhattan(a, c) <= manhattan(a, b) + manhattan(b, c));
    }

    #[test]
    fn manhattan_symmetry_and_identity(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(manhattan(a, b), manhattan(b, a));
        prop_assert_eq!(manhattan(a, a), 0);
    }

    #[test]
    fn rect_intersection_commutes_and_is_contained(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn rect_hull_contains_both_and_is_minimal_area_monotone(a in arb_rect(), b in arb_rect()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_rect(&a) && h.contains_rect(&b));
        prop_assert!(h.area() >= a.area().max(b.area()));
    }

    #[test]
    fn rect_contains_point_iff_spans_contain(r in arb_rect(), p in arb_point()) {
        let by_span = r.span(Dir::Horizontal).contains(p.x) && r.span(Dir::Vertical).contains(p.y);
        prop_assert_eq!(r.contains(p), by_span);
    }

    #[test]
    fn interval_subtract_is_disjoint_from_cut(a in arb_interval(), cut in arb_interval()) {
        for piece in a.subtract(&cut) {
            prop_assert!(a.contains_interval(&piece));
            prop_assert!(!piece.overlaps_interior(&cut));
        }
    }

    #[test]
    fn interval_subtract_preserves_uncut_points(a in arb_interval(), cut in arb_interval(), x in -1000i64..1000) {
        // Any point of `a` strictly outside `cut` must survive in a piece.
        if a.contains(x) && !(cut.lo() < x && x < cut.hi()) {
            let pieces = a.subtract(&cut);
            prop_assert!(pieces.iter().any(|p| p.contains(x)),
                "point {x} of {a} lost when cutting {cut}: {pieces:?}");
        }
    }

    #[test]
    fn interval_hull_and_intersect_are_dual(a in arb_interval(), b in arb_interval()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a) && h.contains_interval(&b));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_interval(&i) && b.contains_interval(&i));
            prop_assert_eq!(h.len(), a.len() + b.len() - i.len());
        } else {
            prop_assert!(h.len() > a.len() + b.len());
        }
    }

    #[test]
    fn rect_expand_round_trips(r in arb_rect(), d in 0i64..100) {
        let grown = r.expand(d);
        prop_assert!(grown.contains_rect(&r));
        prop_assert_eq!(grown.expand(-d), r);
    }

    #[test]
    fn point_track_coordinates_round_trip(p in arb_point()) {
        for dir in [Dir::Horizontal, Dir::Vertical] {
            prop_assert_eq!(Point::from_track(dir, p.across(dir), p.along(dir)), p);
        }
    }
}
