//! Ordering-strategy contract (DESIGN.md §12): every `ocr-order-v1`
//! strategy is a pure permutation that keeps the flow oracle-clean, and
//! the portfolio racer is deterministic —
//!
//! * `--order portfolio` output is byte-identical at any `OCR_THREADS`,
//! * the portfolio result is exactly the winning strategy's standalone
//!   result (cancelled losers leave no residue in the design), and
//! * by the winner rule it is never worse in unrouted-net count than
//!   `longest`, the paper's default, on any suite chip.

use overcell_router::core::{
    ordering_from_name, FlowKind, FlowOptions, LongestDistance, NetOrdering, OverCellFlow,
    PortfolioReport,
};
use overcell_router::exec::with_threads;
use overcell_router::gen::suite;
use overcell_router::io::write_routes;
use overcell_router::netlist::validate_routed_design;

/// Routes one suite chip with an explicit ordering and salvage on, so
/// an ordering that strands nets reports them instead of erroring.
fn route_with(chip: &overcell_router::gen::GeneratedChip, ordering: NetOrdering) -> String {
    let result = FlowKind::OverCell
        .build_with_ordering(FlowOptions::new().salvage(true), Some(ordering))
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    write_routes(&result.layout, &result.design)
}

fn race(chip: &overcell_router::gen::GeneratedChip, k: usize) -> (String, PortfolioReport) {
    let flow = OverCellFlow {
        options: FlowOptions::new().salvage(true),
        ..OverCellFlow::default()
    };
    let (result, report) = flow
        .run_portfolio(&chip.layout, &chip.placement, k)
        .expect("portfolio");
    (write_routes(&result.layout, &result.design), report)
}

#[test]
fn longest_distance_strategy_matches_the_default_flow() {
    for chip in suite::all() {
        let default = FlowKind::OverCell
            .build_with(FlowOptions::new().salvage(true))
            .run(&chip.layout, &chip.placement)
            .expect("default flow");
        let explicit = route_with(&chip, NetOrdering::strategy(LongestDistance));
        assert_eq!(
            write_routes(&default.layout, &default.design),
            explicit,
            "{}: the `longest` strategy must preserve the default order",
            chip.spec.name
        );
    }
}

#[test]
fn every_strategy_stays_oracle_clean_across_the_suite() {
    for chip in suite::all() {
        for name in [
            "longest",
            "shortest",
            "congestion",
            "criticality",
            "shuffle:3",
        ] {
            let ordering = ordering_from_name(name).expect(name);
            let result = FlowKind::OverCell
                .build_with_ordering(
                    FlowOptions::new().salvage(true).verify(true),
                    Some(ordering),
                )
                .run(&chip.layout, &chip.placement)
                .unwrap_or_else(|e| panic!("{} under {name}: {e}", chip.spec.name));
            let report = result.verify.expect("verify report attached");
            assert!(
                report.is_clean(),
                "{} under {name}: {report}",
                chip.spec.name
            );
            let errors = validate_routed_design(&result.layout, &result.design);
            assert!(
                errors.is_empty(),
                "{} under {name}: {errors:?}",
                chip.spec.name
            );
        }
    }
}

#[test]
fn portfolio_is_byte_identical_across_thread_counts() {
    let chip = suite::ami33_like();
    let (seq_routes, seq_report) = with_threads(1, || race(&chip, 4));
    let (par_routes, par_report) = with_threads(4, || race(&chip, 4));
    assert_eq!(
        seq_routes, par_routes,
        "portfolio routes must not depend on OCR_THREADS"
    );
    assert_eq!(
        seq_report, par_report,
        "the per-strategy report must not depend on OCR_THREADS"
    );
}

#[test]
fn portfolio_result_is_the_winners_standalone_run() {
    // Cancelled losers must leave no occupancy residue: the merged
    // design is bit-equal to routing with the winning strategy alone.
    let chip = suite::ami33_like();
    let (routes, report) = race(&chip, 4);
    let winner =
        ordering_from_name(report.winner_name()).expect("winner names round-trip the registry");
    assert_eq!(
        routes,
        route_with(&chip, winner),
        "portfolio winner {} (index {}) must equal its standalone run",
        report.winner_name(),
        report.winner
    );
}

#[test]
fn portfolio_is_never_worse_than_longest_on_the_suite() {
    for chip in suite::all() {
        let longest = FlowKind::OverCell
            .build_with_ordering(
                FlowOptions::new().salvage(true),
                Some(NetOrdering::LongestFirst),
            )
            .run(&chip.layout, &chip.placement)
            .expect("longest flow");
        let unrouted = longest.stats.as_ref().map_or(0, |s| s.nets_failed);
        let (_, report) = race(&chip, 4);
        assert!(
            report.winner_unrouted <= unrouted,
            "{}: portfolio {} unrouted vs longest {unrouted}",
            chip.spec.name,
            report.winner_unrouted
        );
        assert_eq!(
            report.outcomes.len(),
            4,
            "{}: four strategies raced",
            chip.spec.name
        );
    }
}
