//! Self-tests for the `ocr-verify` oracle: hand-built routed designs
//! with one injected defect each, checked to yield exactly the expected
//! violation — plus a clean design that must come back empty.

use overcell_router::geom::{Layer, LayerSet, Point, Rect};
use overcell_router::netlist::{
    Layout, NetClass, NetId, NetRoute, Obstacle, RouteSeg, RoutedDesign, Via,
};
use overcell_router::verify::{verify, Violation, ViolationKind};

/// A 200×200 die with default design rules (metal1: width 3, spacing 3).
fn base_layout() -> Layout {
    Layout::new(Rect::new(0, 0, 200, 200))
}

/// Adds a two-pin metal1 net with pins at `a` and `b`.
fn two_pin_net(layout: &mut Layout, name: &str, a: Point, b: Point) -> NetId {
    let n = layout.add_net(name, NetClass::Signal);
    layout.add_pin(n, None, a, Layer::Metal1);
    layout.add_pin(n, None, b, Layer::Metal1);
    n
}

fn wire(a: Point, b: Point, layer: Layer) -> RouteSeg {
    RouteSeg::new(a, b, layer)
}

#[test]
fn clean_design_yields_empty_report() {
    let mut layout = base_layout();
    let n = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let mut design = RoutedDesign::new(layout.die, 1);
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 10), Point::new(90, 10), Layer::Metal1));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert!(report.is_clean(), "{report}");
    assert!(report.violations.is_empty());
    assert_eq!(report.connected_nets(), 1);
}

#[test]
fn injected_short_is_detected() {
    let mut layout = base_layout();
    let a = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let b = two_pin_net(&mut layout, "b", Point::new(50, 2), Point::new(50, 40));
    let mut design = RoutedDesign::new(layout.die, 2);
    let mut ra = NetRoute::new();
    ra.segs
        .push(wire(Point::new(10, 10), Point::new(90, 10), Layer::Metal1));
    design.set_route(a, ra);
    // Net b's vertical wire crosses net a's horizontal wire at (50, 10).
    let mut rb = NetRoute::new();
    rb.segs
        .push(wire(Point::new(50, 2), Point::new(50, 40), Layer::Metal1));
    design.set_route(b, rb);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0] {
        Violation::Short {
            a: lo,
            b: hi,
            layer,
            at,
        } => {
            assert_eq!((*lo, *hi), (a, b));
            assert_eq!(*layer, Layer::Metal1);
            assert_eq!(at.x, 50, "short is on the crossing column");
        }
        other => panic!("expected a short, got {other}"),
    }
}

#[test]
fn injected_open_net_is_detected() {
    let mut layout = base_layout();
    let n = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let mut design = RoutedDesign::new(layout.die, 1);
    // Wire stops 40 units short of the second pin.
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 10), Point::new(50, 10), Layer::Metal1));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(
        report.violations[0],
        Violation::OpenNet {
            net: n,
            components: 2
        }
    );
    assert_eq!(report.open_nets(), 1);
}

#[test]
fn injected_sub_spacing_pair_is_detected() {
    let mut layout = base_layout();
    let a = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let b = two_pin_net(&mut layout, "b", Point::new(10, 14), Point::new(90, 14));
    let mut design = RoutedDesign::new(layout.die, 2);
    // Parallel metal1 wires 4 apart: drawn edges (width 3) are 1 apart,
    // below the spacing rule of 3 — but not touching, so no short.
    let mut ra = NetRoute::new();
    ra.segs
        .push(wire(Point::new(10, 10), Point::new(90, 10), Layer::Metal1));
    design.set_route(a, ra);
    let mut rb = NetRoute::new();
    rb.segs
        .push(wire(Point::new(10, 14), Point::new(90, 14), Layer::Metal1));
    design.set_route(b, rb);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0] {
        Violation::Spacing {
            a: lo,
            b: hi,
            layer,
            gap,
            required,
            ..
        } => {
            assert_eq!((*lo, *hi), (a, b));
            assert_eq!(*layer, Layer::Metal1);
            assert_eq!(*gap, 1.0, "edge-to-edge drawn gap");
            assert_eq!(*required, 3);
        }
        other => panic!("expected a spacing violation, got {other}"),
    }
}

#[test]
fn legal_pitch_pair_is_not_flagged() {
    let mut layout = base_layout();
    let a = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let b = two_pin_net(&mut layout, "b", Point::new(10, 16), Point::new(90, 16));
    let mut design = RoutedDesign::new(layout.die, 2);
    // Centerlines a full pitch (width 3 + spacing 3) apart: the drawn
    // gap equals the spacing rule exactly, which is legal.
    let mut ra = NetRoute::new();
    ra.segs
        .push(wire(Point::new(10, 10), Point::new(90, 10), Layer::Metal1));
    design.set_route(a, ra);
    let mut rb = NetRoute::new();
    rb.segs
        .push(wire(Point::new(10, 16), Point::new(90, 16), Layer::Metal1));
    design.set_route(b, rb);
    let report = verify(&layout, &design);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn injected_via_without_landing_layer_is_detected() {
    let mut layout = base_layout();
    let n = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let mut design = RoutedDesign::new(layout.die, 1);
    // A via to metal2 in the middle of the wire, with no metal2
    // geometry anywhere to land on.
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 10), Point::new(90, 10), Layer::Metal1));
    route
        .vias
        .push(Via::new(Point::new(50, 10), Layer::Metal1, Layer::Metal2));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(
        report.violations[0],
        Violation::ViaLanding {
            net: n,
            at: Point::new(50, 10),
            missing: Layer::Metal2,
        }
    );
}

#[test]
fn injected_wire_through_metal3_obstacle_is_detected() {
    let mut layout = base_layout();
    let n = layout.add_net("a", NetClass::Signal);
    layout.add_pin(n, None, Point::new(10, 50), Layer::Metal3);
    layout.add_pin(n, None, Point::new(90, 50), Layer::Metal3);
    layout.add_obstacle(Obstacle::new(
        Rect::new(40, 30, 60, 70),
        LayerSet::single(Layer::Metal3),
    ));
    let mut design = RoutedDesign::new(layout.die, 1);
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 50), Point::new(90, 50), Layer::Metal3));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(
        report.violations[0],
        Violation::ObstacleIntrusion {
            net: n,
            obstacle: 0,
            layer: Layer::Metal3,
            at: Point::new(10, 50),
        }
    );
}

#[test]
fn injected_wire_outside_die_is_detected() {
    let mut layout = base_layout();
    let n = two_pin_net(&mut layout, "a", Point::new(10, 10), Point::new(90, 10));
    let mut design = RoutedDesign::new(layout.die, 1);
    // The wire overshoots the 200-wide die.
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 10), Point::new(250, 10), Layer::Metal1));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert_eq!(report.count(ViolationKind::OutsideDie), 1, "{report}");
    assert!(matches!(
        report
            .violations
            .iter()
            .find(|v| v.kind() == ViolationKind::OutsideDie),
        Some(Violation::OutsideDie {
            layer: Some(Layer::Metal1),
            ..
        })
    ));
}

#[test]
fn injected_sliver_is_detected() {
    let mut layout = base_layout();
    // Single-pin net: connectivity is skipped, geometry checks still run.
    let n = layout.add_net("a", NetClass::Signal);
    layout.add_pin(n, None, Point::new(10, 10), Layer::Metal1);
    let mut design = RoutedDesign::new(layout.die, 1);
    // A length-2 stub (metal1 min width is 3) protruding from the pin
    // with a free far end.
    let mut route = NetRoute::new();
    route
        .segs
        .push(wire(Point::new(10, 10), Point::new(12, 10), Layer::Metal1));
    design.set_route(n, route);
    let report = verify(&layout, &design);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(
        report.violations[0],
        Violation::MinWidth {
            net: n,
            layer: Layer::Metal1,
            at: Point::new(10, 10),
            length: 2,
            required: 3,
        }
    );
}
