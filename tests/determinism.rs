//! Determinism contract of the parallel execution engine: every flow's
//! output is a pure function of its input — independent of the
//! `ocr-exec` worker count and stable across repeated runs.
//!
//! These tests pin the guarantee DESIGN.md documents: a parallel run
//! (`OCR_THREADS=4`) is **bit-identical** to a sequential run
//! (`OCR_THREADS=1`) of the same flow on the same chip, both in routed
//! geometry and in the independent oracle's report. The worker count is
//! forced with `ocr_exec::with_threads` rather than the environment
//! variable so both runs happen inside one test process.

use overcell_router::core::{FlowKind, FlowOptions, FlowResult};
use overcell_router::exec::with_threads;
use overcell_router::gen::random::small_random;
use overcell_router::gen::suite;
use overcell_router::io::write_routes;
use overcell_router::verify::VerifyReport;

/// Routed geometry + oracle report of one (flow, chip) run, in
/// byte-comparable form.
fn run_text(
    kind: FlowKind,
    layout: &overcell_router::netlist::Layout,
    placement: &overcell_router::netlist::RowPlacement,
) -> (String, VerifyReport) {
    let result: FlowResult = kind
        .build_with(FlowOptions::verified())
        .run(layout, placement)
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    let text = write_routes(&result.layout, &result.design);
    let report = result.verify.expect("verify requested");
    (text, report)
}

#[test]
fn same_seed_routes_byte_identically_twice() {
    for seed in [3u64, 19] {
        let a = small_random(6, 2, 3, 10, seed);
        let b = small_random(6, 2, 3, 10, seed);
        for kind in FlowKind::ALL {
            let (ta, _) = run_text(kind, &a.layout, &a.placement);
            let (tb, _) = run_text(kind, &b.layout, &b.placement);
            assert_eq!(ta, tb, "{kind} seed {seed}");
        }
    }
}

#[test]
fn sequential_and_parallel_runs_are_bit_identical_on_the_suite() {
    for chip in suite::all() {
        for kind in FlowKind::ALL {
            let (seq_text, seq_report) =
                with_threads(1, || run_text(kind, &chip.layout, &chip.placement));
            let (par_text, par_report) =
                with_threads(4, || run_text(kind, &chip.layout, &chip.placement));
            assert_eq!(
                seq_text, par_text,
                "{}/{kind}: routed geometry diverged between 1 and 4 threads",
                chip.spec.name
            );
            assert_eq!(
                seq_report, par_report,
                "{}/{kind}: oracle report diverged between 1 and 4 threads",
                chip.spec.name
            );
        }
    }
}

#[test]
fn strict_verification_is_thread_count_independent() {
    let chip = small_random(8, 3, 4, 20, 42);
    for kind in FlowKind::ALL {
        let run = |threads: usize| {
            with_threads(threads, || {
                kind.build_with(FlowOptions::verified_strict())
                    .run(&chip.layout, &chip.placement)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"))
                    .verify
                    .expect("verify requested")
            })
        };
        assert_eq!(run(1), run(4), "{kind}");
    }
}
