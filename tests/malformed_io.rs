//! Malformed-input fuzzing (seeded, in-tree PRNG): `parse_chip` and
//! `parse_routes` must return `Ok` or a `ParseError` on every mutated
//! input — a panic is never acceptable on external text.

use overcell_router::core::{FlowKind, FlowOptions};
use overcell_router::fault::corrupt_text;
use overcell_router::gen::random::small_random;
use overcell_router::io::{parse_chip, parse_routes, write_chip, write_routes};
use std::panic::{catch_unwind, AssertUnwindSafe};

const TRIALS: usize = 6_000;

#[test]
fn parse_chip_never_panics_on_mutated_inputs() {
    let chip = small_random(8, 3, 4, 16, 42);
    let base = write_chip(&chip.layout, &chip.placement);
    for i in 0..TRIALS {
        let seed = 0x5eed ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_chip(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_chip panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn parse_routes_never_panics_on_mutated_inputs() {
    let chip = small_random(6, 2, 3, 10, 42);
    let result = FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    let base = write_routes(&result.layout, &result.design);
    for i in 0..TRIALS {
        let seed = 0x0c0ffee ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_routes(&result.layout, &mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_routes panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn valid_round_trips_survive_the_fuzz_fixture() {
    // Sanity: the fuzz bases themselves are valid and round-trip, so
    // the corpus mutates real documents rather than junk.
    let chip = small_random(8, 3, 4, 16, 42);
    let base = write_chip(&chip.layout, &chip.placement);
    let (l2, p2) = parse_chip(&base).expect("base chip parses");
    assert_eq!(write_chip(&l2, &p2), base);
}

#[test]
fn parse_jobs_never_panics_on_mutated_inputs() {
    // The fuzz base exercises the whole `ocr-jobs-v1` grammar: every
    // per-job option, negative priority, comments.
    use overcell_router::io::job::{parse_jobs, write_jobs, JobSpec};

    let mut a = JobSpec::new("alpha", "chips/a.ocr");
    a.flow = "channel3".into();
    a.priority = -4;
    a.max_steps = Some(9_000);
    a.salvage = true;
    a.verify = true;
    let b = JobSpec::new("beta.2", "b.ocr");
    let base = format!("# spooled batch\n{}", write_jobs(&[a, b]));
    parse_jobs(&base).expect("base jobs document parses");
    for i in 0..TRIALS {
        let seed = 0x10b5 ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_jobs(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_jobs panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn parse_results_never_panics_on_mutated_inputs() {
    use overcell_router::io::job::{parse_results, write_results, JobRecord};

    let records = vec![
        JobRecord {
            name: "alpha".into(),
            status: "done".into(),
            steps: 203,
            routed: 123,
            degraded: 0,
            preempts: 2,
            detail: String::new(),
        },
        JobRecord {
            name: "beta".into(),
            status: "failed".into(),
            steps: 0,
            routed: 0,
            degraded: 0,
            preempts: 0,
            detail: "poisoned: injected fault".into(),
        },
    ];
    let base = write_results(&records);
    parse_results(&base).expect("base results document parses");
    for i in 0..TRIALS {
        let seed = 0x4e5 ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_results(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_results panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn weights_specs_never_panic_and_never_smuggle_non_finite_weights() {
    // `--weights` specs come from the command line, so the parser gets
    // the same treatment as the file grammars: every mutation of a
    // valid spec must parse or return a typed error — never panic —
    // and every *accepted* spec must survive validation (no NaN or
    // infinity sneaking into the cost function through creative
    // spellings like `w1=nan` or `w21=-inf`).
    use overcell_router::core::CostWeights;

    let base = "w1=2.5,w21=0.75,w22=1,w23=0.5,w24=0.25,radius=5";
    CostWeights::parse(base).expect("base weights spec parses");
    for i in 0..TRIALS {
        let seed = 0x3e16e75 ^ i as u64;
        let mutated = corrupt_text(base, seed, 1 + i % 8);
        let outcome = catch_unwind(AssertUnwindSafe(|| CostWeights::parse(&mutated)));
        match outcome {
            Ok(Ok(w)) => assert_eq!(
                w.validate(),
                Ok(()),
                "accepted spec produced invalid weights (seed {seed}, input {mutated:?})"
            ),
            Ok(Err(_)) => {}
            Err(_) => {
                panic!("CostWeights::parse panicked on mutation seed {seed} (input {mutated:?})")
            }
        }
    }
}

#[test]
fn parse_checkpoint_never_panics_on_mutated_inputs() {
    // The fuzz base is a *real* mid-run checkpoint — routed geometry,
    // failure reasons, pending queue, stats — so mutations hit every
    // section of the `ocr-ckpt-v1` grammar, not just the header.
    use overcell_router::core::{CheckpointSpec, RunSession};
    use overcell_router::exec::RunControl;
    use overcell_router::io::ckpt::{fnv1a_64, parse_checkpoint};

    let chip = small_random(6, 2, 3, 10, 42);
    let path = std::env::temp_dir().join(format!("ocr-malformed-ckpt-{}.ckpt", std::process::id()));
    let session = RunSession {
        control: RunControl::new().with_step_budget(6),
        checkpoint: Some(CheckpointSpec {
            path: path.clone(),
            every: 1,
            flow: FlowKind::OverCell.name().to_string(),
            chip_hash: fnv1a_64(&write_chip(&chip.layout, &chip.placement)),
        }),
        resume: None,
    };
    FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run_controlled(&chip.layout, &chip.placement, &session)
        .expect("budgeted flow");
    let base = std::fs::read_to_string(&path).expect("checkpoint written");
    let _ = std::fs::remove_file(&path);
    assert!(
        base.lines().any(|l| l.starts_with("routed ")),
        "fixture must contain committed routes"
    );

    for i in 0..TRIALS {
        let seed = 0xc4e_c4e ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_checkpoint(&chip.layout, &mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_checkpoint panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

/// Writes a committed mid-run `ocr-ckpt-v1` checkpoint for a small
/// random chip and returns `(chip, checkpoint text)`. Shared by the
/// torn-file tests below.
fn committed_checkpoint(tag: &str) -> (overcell_router::gen::GeneratedChip, String) {
    use overcell_router::core::{CheckpointSpec, RunSession};
    use overcell_router::exec::RunControl;
    use overcell_router::io::ckpt::fnv1a_64;

    let chip = small_random(6, 2, 3, 10, 42);
    let path =
        std::env::temp_dir().join(format!("ocr-torn-ckpt-{tag}-{}.ckpt", std::process::id()));
    let session = RunSession {
        control: RunControl::new().with_step_budget(6),
        checkpoint: Some(CheckpointSpec {
            path: path.clone(),
            every: 1,
            flow: FlowKind::OverCell.name().to_string(),
            chip_hash: fnv1a_64(&write_chip(&chip.layout, &chip.placement)),
        }),
        resume: None,
    };
    FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run_controlled(&chip.layout, &chip.placement, &session)
        .expect("budgeted flow");
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    let _ = std::fs::remove_file(&path);
    assert!(
        text.lines().any(|l| l.starts_with("routed ")),
        "fixture must contain committed routes"
    );
    (chip, text)
}

#[test]
fn truncated_checkpoints_error_cleanly_at_every_byte_boundary() {
    // A crash can tear a checkpoint at any byte. Whatever prefix
    // survives, `parse_checkpoint` must return a typed `ParseError`
    // (or, when the cut lands exactly on a record boundary, a valid
    // shorter document) — never a panic. The `.ocr` family is ASCII,
    // so every byte boundary is a char boundary.
    use overcell_router::io::ckpt::parse_checkpoint;

    let (chip, base) = committed_checkpoint("boundary");
    assert!(base.is_ascii(), "checkpoint text must be ASCII");
    let full = parse_checkpoint(&chip.layout, &base).expect("full checkpoint parses");

    let mut errors = 0usize;
    for cut in 0..base.len() {
        let torn = &base[..cut];
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_checkpoint(&chip.layout, torn)));
        let result = outcome.unwrap_or_else(|_| {
            panic!(
                "parse_checkpoint panicked at byte {cut} (tail: {:?})",
                &torn[torn.len().saturating_sub(80)..]
            )
        });
        if let Err(e) = result {
            errors += 1;
            let lines = torn.lines().count().max(1);
            assert!(
                e.line >= 1 && e.line <= lines,
                "error at byte {cut} points outside the document: {e}"
            );
            assert!(!e.message.is_empty(), "error at byte {cut} has no message");
        }
    }
    assert!(errors > 0, "some truncations must surface typed errors");
    assert_eq!(
        parse_checkpoint(&chip.layout, &base).expect("still parses"),
        full,
        "the untruncated document must stay valid"
    );
}

#[test]
fn resume_on_a_torn_checkpoint_reports_a_clean_diagnostic() {
    // `ocr route --resume torn.ckpt` must exit non-zero with an
    // `error:` diagnostic naming the checkpoint file — not a panic,
    // and not a silent resume from corrupt state.
    use overcell_router::io::ckpt::parse_checkpoint;

    let (chip, base) = committed_checkpoint("cli");
    // Deepest cut whose prefix no longer parses: a genuinely torn
    // final record, not a clean record boundary.
    let cut = (0..base.len())
        .rev()
        .find(|&cut| parse_checkpoint(&chip.layout, &base[..cut]).is_err())
        .expect("some prefix fails to parse");

    let dir = std::env::temp_dir().join(format!("ocr-torn-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let chip_path = dir.join("chip.ocr");
    let torn_path = dir.join("torn.ckpt");
    std::fs::write(&chip_path, write_chip(&chip.layout, &chip.placement)).expect("chip file");
    std::fs::write(&torn_path, &base[..cut]).expect("torn checkpoint");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ocr"))
        .arg("route")
        .arg(&chip_path)
        .arg("--resume")
        .arg(&torn_path)
        .output()
        .expect("run ocr");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "resume from a torn checkpoint must fail (stderr: {stderr})"
    );
    assert!(
        stderr.contains("error:") && stderr.contains("torn.ckpt"),
        "diagnostic must name the torn checkpoint: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "diagnostic must be a clean error, not a panic: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A realistic multiline `ocr-wire-v1` submit frame for the fuzz
/// tests below: options on the job line, chip text in the payload.
fn wire_specimen() -> (String, Vec<u8>) {
    use overcell_router::io::job::JobSpec;
    use overcell_router::io::wire;

    let chip = small_random(6, 2, 3, 10, 42);
    let mut spec = JobSpec::new("fuzz", "-");
    spec.priority = 3;
    spec.salvage = true;
    spec.tenant = Some("acme".to_string());
    let payload = wire::submit_payload(&spec, &write_chip(&chip.layout, &chip.placement));
    let bytes = wire::frame(&payload);
    (payload, bytes)
}

#[test]
fn wire_frames_torn_at_every_byte_boundary_are_typed_errors() {
    use overcell_router::io::wire;

    let (payload, bytes) = wire_specimen();
    // The intact frame round-trips...
    assert_eq!(
        wire::read_frame(&mut &bytes[..], 1 << 20).expect("intact frame"),
        Some(payload)
    );
    // ...and every truncation is a clean EOF (cut 0) or a typed error
    // — torn mid-header, torn mid-payload, torn at the terminator —
    // never a panic.
    for cut in 0..bytes.len() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            wire::read_frame(&mut &bytes[..cut], 1 << 20)
        }));
        let result = outcome.unwrap_or_else(|_| panic!("read_frame panicked at cut {cut}"));
        if cut == 0 {
            assert!(
                matches!(result, Ok(None)),
                "cut 0 is a clean close: {result:?}"
            );
        } else {
            assert!(
                result.is_err(),
                "cut {cut} of {} must be a typed error: {result:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn wire_streams_torn_anywhere_in_the_magic_never_panic() {
    use overcell_router::io::wire;

    let (_, frame) = wire_specimen();
    let mut stream = Vec::new();
    wire::write_magic(&mut stream).expect("magic");
    stream.extend_from_slice(&frame);
    for cut in 0..stream.len() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut r = &stream[..cut];
            wire::read_magic(&mut r).and_then(|()| wire::read_frame(&mut r, 1 << 20))
        }));
        assert!(outcome.is_ok(), "torn stream panicked at cut {cut}");
    }
}

#[test]
fn oversized_and_absurd_wire_lengths_are_rejected_before_any_payload() {
    use overcell_router::io::wire::{self, WireError};

    // A length over the limit is rejected from the header alone — no
    // payload bytes exist to back it up, and none are needed.
    for header in [
        "f 65 0123456789abcdef\n",
        "f 1048576 0123456789abcdef\n",
        "f 18446744073709551615 0123456789abcdef\n",
    ] {
        match wire::read_frame(&mut header.as_bytes(), 64) {
            Err(WireError::Oversized { len, max: 64 }) => assert!(len > 64),
            other => panic!("{header:?}: expected oversized, got {other:?}"),
        }
    }
    // Lengths that do not even parse are bad headers, not crashes.
    for header in [
        "f 99999999999999999999 0123456789abcdef\n",
        "f -1 0123456789abcdef\n",
        "f abc 0123456789abcdef\n",
        "f 10 xyz\n",
        "f 10 0123456789abcdef0123\n",
        "frame 10 0123456789abcdef\n",
    ] {
        let result = wire::read_frame(&mut header.as_bytes(), 64);
        assert!(
            matches!(result, Err(WireError::BadHeader(_))),
            "{header:?}: {result:?}"
        );
    }
}

#[test]
fn corrupted_wire_frames_are_typed_errors_never_panics() {
    use overcell_router::io::wire;

    let (_, bytes) = wire_specimen();
    // Every single-bit corruption of any byte — header, checksum,
    // payload, terminators — yields a typed error: the checksum (or
    // the header grammar) catches it, and nothing panics.
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut mutated = bytes.clone();
            mutated[i] ^= bit;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                wire::read_frame(&mut &mutated[..], 1 << 20)
            }));
            let result =
                outcome.unwrap_or_else(|_| panic!("read_frame panicked at byte {i} bit {bit:#x}"));
            assert!(
                result.is_err(),
                "flip at byte {i} bit {bit:#x} must not pass validation: {result:?}"
            );
        }
    }
}

#[test]
fn mutated_wire_requests_are_typed_errors_never_panics() {
    use overcell_router::io::wire;

    let (payload, _) = wire_specimen();
    for i in 0..2_000 {
        let seed = 0x31ee ^ i as u64;
        let mutated = corrupt_text(&payload, seed, 1 + i % 16);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = wire::parse_request(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_request panicked on mutation seed {seed}"
        );
    }
}
