//! Malformed-input fuzzing (seeded, in-tree PRNG): `parse_chip` and
//! `parse_routes` must return `Ok` or a `ParseError` on every mutated
//! input — a panic is never acceptable on external text.

use overcell_router::core::{FlowKind, FlowOptions};
use overcell_router::fault::corrupt_text;
use overcell_router::gen::random::small_random;
use overcell_router::io::{parse_chip, parse_routes, write_chip, write_routes};
use std::panic::{catch_unwind, AssertUnwindSafe};

const TRIALS: usize = 6_000;

#[test]
fn parse_chip_never_panics_on_mutated_inputs() {
    let chip = small_random(8, 3, 4, 16, 42);
    let base = write_chip(&chip.layout, &chip.placement);
    for i in 0..TRIALS {
        let seed = 0x5eed ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_chip(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_chip panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn parse_routes_never_panics_on_mutated_inputs() {
    let chip = small_random(6, 2, 3, 10, 42);
    let result = FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    let base = write_routes(&result.layout, &result.design);
    for i in 0..TRIALS {
        let seed = 0x0c0ffee ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_routes(&result.layout, &mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_routes panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn valid_round_trips_survive_the_fuzz_fixture() {
    // Sanity: the fuzz bases themselves are valid and round-trip, so
    // the corpus mutates real documents rather than junk.
    let chip = small_random(8, 3, 4, 16, 42);
    let base = write_chip(&chip.layout, &chip.placement);
    let (l2, p2) = parse_chip(&base).expect("base chip parses");
    assert_eq!(write_chip(&l2, &p2), base);
}

#[test]
fn parse_jobs_never_panics_on_mutated_inputs() {
    // The fuzz base exercises the whole `ocr-jobs-v1` grammar: every
    // per-job option, negative priority, comments.
    use overcell_router::io::job::{parse_jobs, write_jobs, JobSpec};

    let mut a = JobSpec::new("alpha", "chips/a.ocr");
    a.flow = "channel3".into();
    a.priority = -4;
    a.max_steps = Some(9_000);
    a.salvage = true;
    a.verify = true;
    let b = JobSpec::new("beta.2", "b.ocr");
    let base = format!("# spooled batch\n{}", write_jobs(&[a, b]));
    parse_jobs(&base).expect("base jobs document parses");
    for i in 0..TRIALS {
        let seed = 0x10b5 ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_jobs(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_jobs panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn parse_results_never_panics_on_mutated_inputs() {
    use overcell_router::io::job::{parse_results, write_results, JobRecord};

    let records = vec![
        JobRecord {
            name: "alpha".into(),
            status: "done".into(),
            steps: 203,
            routed: 123,
            degraded: 0,
            preempts: 2,
            detail: String::new(),
        },
        JobRecord {
            name: "beta".into(),
            status: "failed".into(),
            steps: 0,
            routed: 0,
            degraded: 0,
            preempts: 0,
            detail: "poisoned: injected fault".into(),
        },
    ];
    let base = write_results(&records);
    parse_results(&base).expect("base results document parses");
    for i in 0..TRIALS {
        let seed = 0x4e5 ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_results(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_results panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

#[test]
fn weights_specs_never_panic_and_never_smuggle_non_finite_weights() {
    // `--weights` specs come from the command line, so the parser gets
    // the same treatment as the file grammars: every mutation of a
    // valid spec must parse or return a typed error — never panic —
    // and every *accepted* spec must survive validation (no NaN or
    // infinity sneaking into the cost function through creative
    // spellings like `w1=nan` or `w21=-inf`).
    use overcell_router::core::CostWeights;

    let base = "w1=2.5,w21=0.75,w22=1,w23=0.5,w24=0.25,radius=5";
    CostWeights::parse(base).expect("base weights spec parses");
    for i in 0..TRIALS {
        let seed = 0x3e16e75 ^ i as u64;
        let mutated = corrupt_text(base, seed, 1 + i % 8);
        let outcome = catch_unwind(AssertUnwindSafe(|| CostWeights::parse(&mutated)));
        match outcome {
            Ok(Ok(w)) => assert_eq!(
                w.validate(),
                Ok(()),
                "accepted spec produced invalid weights (seed {seed}, input {mutated:?})"
            ),
            Ok(Err(_)) => {}
            Err(_) => {
                panic!("CostWeights::parse panicked on mutation seed {seed} (input {mutated:?})")
            }
        }
    }
}

#[test]
fn parse_checkpoint_never_panics_on_mutated_inputs() {
    // The fuzz base is a *real* mid-run checkpoint — routed geometry,
    // failure reasons, pending queue, stats — so mutations hit every
    // section of the `ocr-ckpt-v1` grammar, not just the header.
    use overcell_router::core::{CheckpointSpec, RunSession};
    use overcell_router::exec::RunControl;
    use overcell_router::io::ckpt::{fnv1a_64, parse_checkpoint};

    let chip = small_random(6, 2, 3, 10, 42);
    let path = std::env::temp_dir().join(format!("ocr-malformed-ckpt-{}.ckpt", std::process::id()));
    let session = RunSession {
        control: RunControl::new().with_step_budget(6),
        checkpoint: Some(CheckpointSpec {
            path: path.clone(),
            every: 1,
            flow: FlowKind::OverCell.name().to_string(),
            chip_hash: fnv1a_64(&write_chip(&chip.layout, &chip.placement)),
        }),
        resume: None,
    };
    FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run_controlled(&chip.layout, &chip.placement, &session)
        .expect("budgeted flow");
    let base = std::fs::read_to_string(&path).expect("checkpoint written");
    let _ = std::fs::remove_file(&path);
    assert!(
        base.lines().any(|l| l.starts_with("routed ")),
        "fixture must contain committed routes"
    );

    for i in 0..TRIALS {
        let seed = 0xc4e_c4e ^ i as u64;
        let mutated = corrupt_text(&base, seed, 1 + i % 32);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_checkpoint(&chip.layout, &mutated);
        }));
        assert!(
            outcome.is_ok(),
            "parse_checkpoint panicked on mutation seed {seed} (input: {:?}…)",
            mutated.chars().take(200).collect::<String>()
        );
    }
}

/// Writes a committed mid-run `ocr-ckpt-v1` checkpoint for a small
/// random chip and returns `(chip, checkpoint text)`. Shared by the
/// torn-file tests below.
fn committed_checkpoint(tag: &str) -> (overcell_router::gen::GeneratedChip, String) {
    use overcell_router::core::{CheckpointSpec, RunSession};
    use overcell_router::exec::RunControl;
    use overcell_router::io::ckpt::fnv1a_64;

    let chip = small_random(6, 2, 3, 10, 42);
    let path =
        std::env::temp_dir().join(format!("ocr-torn-ckpt-{tag}-{}.ckpt", std::process::id()));
    let session = RunSession {
        control: RunControl::new().with_step_budget(6),
        checkpoint: Some(CheckpointSpec {
            path: path.clone(),
            every: 1,
            flow: FlowKind::OverCell.name().to_string(),
            chip_hash: fnv1a_64(&write_chip(&chip.layout, &chip.placement)),
        }),
        resume: None,
    };
    FlowKind::OverCell
        .build_with(FlowOptions::default())
        .run_controlled(&chip.layout, &chip.placement, &session)
        .expect("budgeted flow");
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    let _ = std::fs::remove_file(&path);
    assert!(
        text.lines().any(|l| l.starts_with("routed ")),
        "fixture must contain committed routes"
    );
    (chip, text)
}

#[test]
fn truncated_checkpoints_error_cleanly_at_every_byte_boundary() {
    // A crash can tear a checkpoint at any byte. Whatever prefix
    // survives, `parse_checkpoint` must return a typed `ParseError`
    // (or, when the cut lands exactly on a record boundary, a valid
    // shorter document) — never a panic. The `.ocr` family is ASCII,
    // so every byte boundary is a char boundary.
    use overcell_router::io::ckpt::parse_checkpoint;

    let (chip, base) = committed_checkpoint("boundary");
    assert!(base.is_ascii(), "checkpoint text must be ASCII");
    let full = parse_checkpoint(&chip.layout, &base).expect("full checkpoint parses");

    let mut errors = 0usize;
    for cut in 0..base.len() {
        let torn = &base[..cut];
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_checkpoint(&chip.layout, torn)));
        let result = outcome.unwrap_or_else(|_| {
            panic!(
                "parse_checkpoint panicked at byte {cut} (tail: {:?})",
                &torn[torn.len().saturating_sub(80)..]
            )
        });
        if let Err(e) = result {
            errors += 1;
            let lines = torn.lines().count().max(1);
            assert!(
                e.line >= 1 && e.line <= lines,
                "error at byte {cut} points outside the document: {e}"
            );
            assert!(!e.message.is_empty(), "error at byte {cut} has no message");
        }
    }
    assert!(errors > 0, "some truncations must surface typed errors");
    assert_eq!(
        parse_checkpoint(&chip.layout, &base).expect("still parses"),
        full,
        "the untruncated document must stay valid"
    );
}

#[test]
fn resume_on_a_torn_checkpoint_reports_a_clean_diagnostic() {
    // `ocr route --resume torn.ckpt` must exit non-zero with an
    // `error:` diagnostic naming the checkpoint file — not a panic,
    // and not a silent resume from corrupt state.
    use overcell_router::io::ckpt::parse_checkpoint;

    let (chip, base) = committed_checkpoint("cli");
    // Deepest cut whose prefix no longer parses: a genuinely torn
    // final record, not a clean record boundary.
    let cut = (0..base.len())
        .rev()
        .find(|&cut| parse_checkpoint(&chip.layout, &base[..cut]).is_err())
        .expect("some prefix fails to parse");

    let dir = std::env::temp_dir().join(format!("ocr-torn-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let chip_path = dir.join("chip.ocr");
    let torn_path = dir.join("torn.ckpt");
    std::fs::write(&chip_path, write_chip(&chip.layout, &chip.placement)).expect("chip file");
    std::fs::write(&torn_path, &base[..cut]).expect("torn checkpoint");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ocr"))
        .arg("route")
        .arg(&chip_path)
        .arg("--resume")
        .arg(&torn_path)
        .output()
        .expect("run ocr");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "resume from a torn checkpoint must fail (stderr: {stderr})"
    );
    assert!(
        stderr.contains("error:") && stderr.contains("torn.ckpt"),
        "diagnostic must name the torn checkpoint: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "diagnostic must be a clean error, not a panic: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
