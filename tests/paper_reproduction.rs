//! The headline reproduction assertions: the *shapes* of the paper's
//! Tables 1–3 and the Figure 1 walk-through must hold on the synthetic
//! benchmark suite. (Absolute magnitudes differ — see EXPERIMENTS.md.)

use overcell_router::core::{
    run_analytic_four_layer_estimate, FourLayerChannelFlow, OverCellFlow, ThreeLayerChannelFlow,
    TwoLayerChannelFlow,
};
use overcell_router::gen::suite;
use overcell_router::netlist::{coupling_report, ChipMetrics};

/// Table 1: the suite reproduces the paper's published statistics.
#[test]
fn table1_statistics_match() {
    let expected = [
        ("ami33", 33, 123, 4, 44.25),
        ("Xerox", 10, 203, 21, 9.19),
        ("ex3", 24, 320, 56, 3.23),
    ];
    for ((name, cells, nets, a_nets, a_avg), chip) in expected.iter().zip(suite::all()) {
        let a = chip.level_a_nets();
        let m = ChipMetrics::of(*name, &chip.layout, &a);
        assert_eq!(m.cells, *cells, "{name} cells");
        assert_eq!(m.nets, *nets, "{name} nets");
        assert_eq!(m.level_a_nets, *a_nets, "{name} level A nets");
        assert!(
            (m.level_a_avg_pins - a_avg).abs() < 0.05,
            "{name} level A avg pins {} vs {}",
            m.level_a_avg_pins,
            a_avg
        );
    }
}

/// Table 2 shape: the proposed flow reduces layout area, wire length
/// and routing vias on every example, by double-digit percentages for
/// area and wire length ("a significant reduction in all three metrics
/// is observed").
#[test]
fn table2_shape_over_cell_beats_two_layer() {
    for chip in suite::all() {
        let name = &chip.spec.name;
        let over = OverCellFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let two = TwoLayerChannelFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(over.design.failed.is_empty() && two.design.failed.is_empty());
        let red = over.metrics.reductions_vs(&two.metrics);
        assert!(red.layout_area >= 10.0, "{name}: area reduction {red}");
        assert!(
            red.wire_length >= 10.0,
            "{name}: wire-length reduction {red}"
        );
        assert!(red.vias > 0.0, "{name}: via reduction {red}");
    }
}

/// Table 3 shape: the over-cell router still beats the 4-layer channel
/// comparators — both the paper's optimistic 50 % analytic model and
/// our real HV+HV channel router ("a further reduction in the overall
/// layout area").
#[test]
fn table3_shape_over_cell_beats_four_layer_channels() {
    for chip in suite::all() {
        let name = &chip.spec.name;
        let over = OverCellFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let two = TwoLayerChannelFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let four = FourLayerChannelFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let estimate = run_analytic_four_layer_estimate(&two, &chip.layout);
        assert!(
            over.metrics.layout_area < estimate,
            "{name}: over-cell {} vs analytic 4-layer {}",
            over.metrics.layout_area,
            estimate
        );
        assert!(
            over.metrics.layout_area < four.metrics.layout_area,
            "{name}: over-cell {} vs real 4-layer {}",
            over.metrics.layout_area,
            four.metrics.layout_area
        );
        // The 4-layer channel flow, in turn, needs no more area than the
        // 2-layer flow (more layers can only relax channels).
        assert!(
            four.metrics.layout_area <= two.metrics.layout_area,
            "{name}"
        );
    }
}

/// §3 claim: the TIG search expands far fewer nodes than a maze wave on
/// the suite's Level B problems (here via the recorded stats: on
/// average well under the grid size per connection).
#[test]
fn mbfs_expansion_stays_track_bounded() {
    let chip = suite::ami33_like();
    let over = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    let stats = over.stats.expect("level B ran");
    // Track count of the ami33 grid is a few hundred; a maze wave
    // touches tens of thousands of cells per connection.
    assert!(
        stats.expanded_per_connection() < 500.0,
        "avg expanded {}",
        stats.expanded_per_connection()
    );
    // The incomplete MBFS needed the maze fallback for only a small
    // fraction of connections.
    assert!(
        (stats.maze_fallbacks as f64) < 0.15 * stats.connections as f64,
        "{} fallbacks of {} connections",
        stats.maze_fallbacks,
        stats.connections
    );
}

/// §1 claim: multi-layer channel routing stacks different nets' wires
/// "one on top of the other over relatively long distances"; the
/// over-cell methodology does not.
#[test]
fn crosstalk_shape_channel_flows_stack_wires() {
    let chip = suite::ami33_like();
    let pitch = chip.layout.rules.over_cell_pitch();
    let over = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("over-cell");
    let three = ThreeLayerChannelFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("3-layer");
    let r_over = coupling_report(&over.design, pitch);
    let r_three = coupling_report(&three.design, pitch);
    assert!(
        r_three.stacked_total() > 10 * r_over.stacked_total(),
        "HVH stacking {} must dwarf over-cell {}",
        r_three.stacked_total(),
        r_over.stacked_total()
    );
    assert!(r_three.max_stacked_run > r_over.max_stacked_run);
}
