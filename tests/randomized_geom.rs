//! Randomized tests on the geometry substrate, driven by the in-tree
//! deterministic PRNG (fixed seeds, so failures reproduce exactly).

use overcell_router::gen::rng::Rng;
use overcell_router::geom::{manhattan, Dir, Interval, Point, Rect};

const CASES: usize = 256;

fn point(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(-1000i64..1000), rng.gen_range(-1000i64..1000))
}

fn rect(rng: &mut Rng) -> Rect {
    Rect::from_points(point(rng), point(rng))
}

fn interval(rng: &mut Rng) -> Interval {
    Interval::new(rng.gen_range(-1000i64..1000), rng.gen_range(-1000i64..1000))
}

#[test]
fn manhattan_triangle_inequality() {
    let mut rng = Rng::seed_from_u64(0x9e01);
    for _ in 0..CASES {
        let (a, b, c) = (point(&mut rng), point(&mut rng), point(&mut rng));
        assert!(manhattan(a, c) <= manhattan(a, b) + manhattan(b, c));
    }
}

#[test]
fn manhattan_symmetry_and_identity() {
    let mut rng = Rng::seed_from_u64(0x9e02);
    for _ in 0..CASES {
        let (a, b) = (point(&mut rng), point(&mut rng));
        assert_eq!(manhattan(a, b), manhattan(b, a));
        assert_eq!(manhattan(a, a), 0);
    }
}

#[test]
fn rect_intersection_commutes_and_is_contained() {
    let mut rng = Rng::seed_from_u64(0x9e03);
    for _ in 0..CASES {
        let (a, b) = (rect(&mut rng), rect(&mut rng));
        assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            assert!(a.contains_rect(&i));
            assert!(b.contains_rect(&i));
        }
    }
}

#[test]
fn rect_hull_contains_both_and_is_minimal_area_monotone() {
    let mut rng = Rng::seed_from_u64(0x9e04);
    for _ in 0..CASES {
        let (a, b) = (rect(&mut rng), rect(&mut rng));
        let h = a.hull(&b);
        assert!(h.contains_rect(&a) && h.contains_rect(&b));
        assert!(h.area() >= a.area().max(b.area()));
    }
}

#[test]
fn rect_contains_point_iff_spans_contain() {
    let mut rng = Rng::seed_from_u64(0x9e05);
    for _ in 0..CASES {
        let (r, p) = (rect(&mut rng), point(&mut rng));
        let by_span = r.span(Dir::Horizontal).contains(p.x) && r.span(Dir::Vertical).contains(p.y);
        assert_eq!(r.contains(p), by_span);
    }
}

#[test]
fn interval_subtract_is_disjoint_from_cut() {
    let mut rng = Rng::seed_from_u64(0x9e06);
    for _ in 0..CASES {
        let (a, cut) = (interval(&mut rng), interval(&mut rng));
        for piece in a.subtract(&cut) {
            assert!(a.contains_interval(&piece));
            assert!(!piece.overlaps_interior(&cut));
        }
    }
}

#[test]
fn interval_subtract_preserves_uncut_points() {
    let mut rng = Rng::seed_from_u64(0x9e07);
    for _ in 0..CASES {
        let (a, cut) = (interval(&mut rng), interval(&mut rng));
        let x = rng.gen_range(-1000i64..1000);
        // Any point of `a` strictly outside `cut` must survive in a piece.
        if a.contains(x) && !(cut.lo() < x && x < cut.hi()) {
            let pieces = a.subtract(&cut);
            assert!(
                pieces.iter().any(|p| p.contains(x)),
                "point {x} of {a} lost when cutting {cut}: {pieces:?}"
            );
        }
    }
}

#[test]
fn interval_hull_and_intersect_are_dual() {
    let mut rng = Rng::seed_from_u64(0x9e08);
    for _ in 0..CASES {
        let (a, b) = (interval(&mut rng), interval(&mut rng));
        let h = a.hull(&b);
        assert!(h.contains_interval(&a) && h.contains_interval(&b));
        if let Some(i) = a.intersect(&b) {
            assert!(a.contains_interval(&i) && b.contains_interval(&i));
            assert_eq!(h.len(), a.len() + b.len() - i.len());
        } else {
            assert!(h.len() > a.len() + b.len());
        }
    }
}

#[test]
fn rect_expand_round_trips() {
    let mut rng = Rng::seed_from_u64(0x9e09);
    for _ in 0..CASES {
        let r = rect(&mut rng);
        let d = rng.gen_range(0i64..100);
        let grown = r.expand(d);
        assert!(grown.contains_rect(&r));
        assert_eq!(grown.expand(-d), r);
    }
}

#[test]
fn point_track_coordinates_round_trip() {
    let mut rng = Rng::seed_from_u64(0x9e0a);
    for _ in 0..CASES {
        let p = point(&mut rng);
        for dir in [Dir::Horizontal, Dir::Vertical] {
            assert_eq!(Point::from_track(dir, p.across(dir), p.along(dir)), p);
        }
    }
}
