//! Regression tests for Level B rip-up-and-reroute bookkeeping: ripped
//! routes must free every grid cell they held (PR 3 fixed a span bug
//! that left cells `Used` when an endpoint pair snapped descending),
//! rip exclusions must reset once a net commits, and terminals sealed
//! under obstacles must never enter the unrouted-terminal list.

use overcell_router::core::{LevelBConfig, LevelBResult, LevelBRouter, NetOrdering};
use overcell_router::geom::{Dir, Layer, LayerSet, Point, Rect};
use overcell_router::grid::CellState;
use overcell_router::netlist::{Layout, NetClass, NetId, Obstacle};
use overcell_router::verify::verify;

/// Two nets contending for a single grid chokepoint: a wall blocks the
/// vertical plane along one row everywhere except a gap at x = 200, so
/// only one net can cross. With a rip-up budget, the later net rips the
/// earlier one, re-routes it, and exactly one survives — exercising
/// clear + re-route repeatedly over the same cells.
fn chokepoint_layout() -> (Layout, Vec<NetId>) {
    let mut l = Layout::new(Rect::new(0, 0, 400, 400));
    for (x0, x1) in [(-5, 195), (205, 405)] {
        l.add_obstacle(Obstacle::new(
            Rect::new(x0, 195, x1, 205),
            LayerSet::level_b(),
        ));
    }
    l.add_obstacle(Obstacle::new(
        Rect::new(195, 195, 205, 205),
        LayerSet::single(Layer::Metal3),
    ));
    let a = l.add_net("first", NetClass::Signal);
    l.add_pin(a, None, Point::new(100, 100), Layer::Metal2);
    l.add_pin(a, None, Point::new(100, 300), Layer::Metal2);
    let b = l.add_net("second", NetClass::Signal);
    l.add_pin(b, None, Point::new(300, 110), Layer::Metal2);
    l.add_pin(b, None, Point::new(300, 310), Layer::Metal2);
    (l, vec![a, b])
}

fn route_with_budget<'a>(
    layout: &'a Layout,
    nets: &[NetId],
    budget: usize,
) -> (LevelBRouter<'a>, LevelBResult) {
    let mut router = LevelBRouter::new(
        layout,
        nets,
        LevelBConfig {
            rip_up_budget: budget,
            ordering: NetOrdering::User(nets.to_vec()),
            ..LevelBConfig::default()
        },
    )
    .expect("router");
    let res = router.route_all().expect("route_all");
    (router, res)
}

/// Every `Used` cell left on the grid after routing must belong either
/// to a net that holds a committed route or to a terminal reservation —
/// anything else is stale occupancy leaked by a rip.
fn stale_used_cells(layout: &Layout, router: &LevelBRouter<'_>, res: &LevelBResult) -> usize {
    let g = router.grid();
    let mut terminal_cells = std::collections::HashSet::new();
    for net in layout.net_ids() {
        for &pid in &layout.net(net).pins {
            if let Some(cell) = g.snap(layout.pin(pid).position) {
                terminal_cells.insert((net.0, cell));
            }
        }
    }
    let mut stale = 0;
    for j in 0..g.nh() {
        for i in 0..g.nv() {
            for d in Dir::BOTH {
                if let CellState::Used(n) = g.state(d, i, j) {
                    let routed = res.design.route(NetId(n)).is_some();
                    if !routed && !terminal_cells.contains(&(n, (i, j))) {
                        stale += 1;
                    }
                }
            }
        }
    }
    stale
}

#[test]
fn forced_rips_leave_no_stale_occupancy() {
    let (l, nets) = chokepoint_layout();
    let (router, res) = route_with_budget(&l, &nets, 1);
    assert!(res.stats.rips >= 1, "the chokepoint must force a rip");
    assert_eq!(
        stale_used_cells(&l, &router, &res),
        0,
        "ripped routes must free every grid cell they held"
    );
    // The independent oracle agrees: committed geometry is legal and
    // the loser is an honestly declared failure, not a silent defect.
    let report = verify(&l, &res.design);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn repeated_rip_reroute_converges() {
    let (l, nets) = chokepoint_layout();
    // A budget far above what the contention needs: the per-net retry
    // cap must still terminate the rip/re-route ping-pong, with the
    // grid consistent at every step.
    let (router, res) = route_with_budget(&l, &nets, 16);
    assert!(res.stats.rips >= 1);
    assert_eq!(
        res.stats.nets_routed, 1,
        "the chokepoint admits exactly one net"
    );
    assert_eq!(res.stats.nets_failed, 1);
    assert_eq!(stale_used_cells(&l, &router, &res), 0);
    assert!(verify(&l, &res.design).is_clean());
}

#[test]
fn exclusions_reset_when_the_ripping_net_commits() {
    let (l, nets) = chokepoint_layout();
    let (router, res) = route_with_budget(&l, &nets, 1);
    // The second net ripped the first and then routed: its exclusion
    // list must have been cleared on commit (stale exclusions would
    // over-restrict later rip-up rounds), and the reset is observable
    // in the stats.
    assert!(res.design.route(nets[1]).is_some(), "second net rescued");
    assert!(
        router.rip_exclusions(nets[1]).is_empty(),
        "exclusions must clear when the net commits"
    );
    assert!(res.stats.exclusions_cleared >= 1);
}

#[test]
fn terminal_sealed_by_obstacle_is_not_queued() {
    let mut l = Layout::new(Rect::new(0, 0, 400, 400));
    // Net `doomed` has a terminal boxed in on both Level B planes; net
    // `live` is ordinary and must route unperturbed.
    let doomed = l.add_net("doomed", NetClass::Signal);
    l.add_pin(doomed, None, Point::new(200, 200), Layer::Metal2);
    l.add_pin(doomed, None, Point::new(380, 380), Layer::Metal2);
    l.add_obstacle(Obstacle::new(
        Rect::new(150, 150, 250, 250),
        LayerSet::level_b(),
    ));
    let live = l.add_net("live", NetClass::Signal);
    l.add_pin(live, None, Point::new(20, 40), Layer::Metal2);
    l.add_pin(live, None, Point::new(380, 40), Layer::Metal2);
    let nets = vec![doomed, live];
    let (_, res) = route_with_budget(&l, &nets, 0);
    assert_eq!(res.stats.doomed_terminals, 1);
    assert_eq!(res.design.failed, vec![doomed]);
    assert!(res.design.route(live).is_some());
    assert!(verify(&l, &res.design).is_clean());
}
