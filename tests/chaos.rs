//! Chaos soak: the ocr-fault layer must be invisible when disarmed,
//! and under injected faults the flows must degrade — typed per-net
//! reasons, oracle-clean salvaged subsets, poisoned tasks isolated —
//! instead of aborting.

use overcell_router::core::{DegradeReason, FlowKind, FlowOptions};
use overcell_router::exec::{parallel_map_isolated, TaskOutcome};
use overcell_router::fault;
use overcell_router::gen::random::small_random;
use overcell_router::io::write_routes;
use overcell_router::netlist::NetId;

/// Routes the fixed test chip and returns the serialized design.
fn routes_text(kind: FlowKind, options: FlowOptions, threads: usize) -> String {
    let chip = small_random(6, 2, 3, 10, 42);
    let result = overcell_router::exec::with_threads(threads, || {
        kind.build_with(options)
            .run(&chip.layout, &chip.placement)
            .expect("flow")
    });
    write_routes(&result.layout, &result.design)
}

#[test]
fn salvage_mode_is_byte_identical_on_clean_chips() {
    // With no plan armed and nothing to degrade, turning salvage on
    // must not perturb the routed design by a single byte — at one
    // worker and at several.
    for kind in FlowKind::ALL {
        for threads in [1, 4] {
            let plain = routes_text(kind, FlowOptions::default(), threads);
            let salvaged = routes_text(kind, FlowOptions::salvaged(), threads);
            assert_eq!(
                plain, salvaged,
                "{kind} at {threads} thread(s): salvage must not perturb routing"
            );
        }
    }
}

#[test]
fn a_disarmed_plan_and_an_empty_armed_plan_are_both_inert() {
    let plain = routes_text(FlowKind::OverCell, FlowOptions::default(), 1);
    assert!(!fault::is_armed(), "tests start disarmed");
    // An armed plan with no rules decides nothing: still byte-identical.
    let empty = fault::plan(9).build();
    let armed = fault::with_plan(&empty, || {
        assert!(fault::is_armed());
        routes_text(FlowKind::OverCell, FlowOptions::default(), 1)
    });
    assert_eq!(plain, armed);
    assert_eq!(empty.total_fires(), 0);
}

/// A chip perturbed into a genuinely hard salvage problem: sealed
/// over-cell blocks force detours and rip-up storms, sealed terminals
/// create doomed nets.
fn storm_chip(seed: u64) -> overcell_router::gen::GeneratedChip {
    let mut chip = small_random(8, 3, 4, 16, seed);
    fault::seal_random_cells(&mut chip.layout, seed, 3);
    fault::seal_random_terminals(&mut chip.layout, seed.wrapping_add(1), 3);
    chip
}

#[test]
fn storm_chips_degrade_but_stay_oracle_clean_and_exhaustive() {
    for seed in [1u64, 7, 23] {
        let chip = storm_chip(seed);
        let options = FlowOptions::new().salvage(true).verify(true);
        let result = FlowKind::OverCell
            .build_with(options)
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("seed {seed}: salvage must not error: {e}"));
        let d = result.degradation.expect("salvage report attached");
        // The sealed terminals doom at least one net on these seeds.
        assert!(!d.is_empty(), "seed {seed}: expected degradations");
        assert!(d.salvaged_routes > 0, "seed {seed}: something salvaged");
        // Exhaustiveness: the report mirrors the failed list exactly.
        let mut failed = result.design.failed.clone();
        failed.sort();
        let mut reported: Vec<NetId> = d.nets.iter().map(|n| n.net).collect();
        reported.sort();
        assert_eq!(failed, reported, "seed {seed}: report ≡ failed list");
        // Every degraded net carries a terminal-level reason here (no
        // panics were injected).
        for nd in &d.nets {
            assert!(
                !matches!(nd.reason, DegradeReason::Poisoned { .. }),
                "seed {seed}: no injected panic, no poisoned reason"
            );
        }
        // The salvaged subset passes the independent oracle: failed
        // nets are declared honestly, committed wiring is DRC-clean.
        let report = result.verify.expect("verify report attached");
        assert!(report.is_clean(), "seed {seed}: {report}");
    }
}

#[test]
fn route_net_panics_degrade_as_poisoned_and_the_rest_survives() {
    let chip = small_random(8, 3, 4, 16, 5);
    let options = FlowOptions::new().salvage(true).verify(true);
    let plan = fault::plan(3).panic_at("level_b.route_net", 0.5, 3).build();
    let result = fault::with_plan(&plan, || {
        FlowKind::OverCell
            .build_with(options)
            .run(&chip.layout, &chip.placement)
            .expect("salvage isolates injected panics")
    });
    let d = result.degradation.expect("salvage report attached");
    assert!(
        d.poisoned() >= 1,
        "a 50%-probability 3-fire panic rule must poison something"
    );
    assert_eq!(
        d.poisoned(),
        result.stats.expect("level B ran").nets_poisoned
    );
    assert!(d.salvaged_routes > 0, "the rest of the chip still routed");
    let report = result.verify.expect("verify report attached");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn poisoned_chaos_trials_are_isolated_from_the_suite_run() {
    // The CLI's chaos harness in miniature: trial 0 hits the plan's
    // guaranteed two-fire panic rule, so its retry panics too and it is
    // reported poisoned; every other trial completes.
    let plan = fault::chaos_plan(1);
    let idx: Vec<usize> = (0..4).collect();
    let outcomes = fault::with_plan(&plan, || {
        parallel_map_isolated(&idx, |&t| {
            if t == 0 {
                fault::point("chaos.trial");
            }
            let chip = storm_chip(t as u64 + 1);
            FlowKind::OverCell
                .build_with(FlowOptions::salvaged())
                .run(&chip.layout, &chip.placement)
                .map(|r| r.degradation.expect("salvage report").salvaged_routes)
                .expect("salvage must not error")
        })
    });
    assert!(
        matches!(&outcomes[0], TaskOutcome::Poisoned { message } if message.contains("chaos.trial")),
        "trial 0 must be poisoned, got {:?}",
        outcomes[0]
    );
    let completed = outcomes[1..]
        .iter()
        .filter(|o| matches!(o, TaskOutcome::Done { .. }))
        .count();
    assert_eq!(completed, 3, "the poisoned trial must not take others down");
    // The pool is still usable after hosting a poisoned task.
    let echo = overcell_router::exec::parallel_map(&idx, |&t| t * 2);
    assert_eq!(echo, vec![0, 2, 4, 6]);
}

#[test]
fn injected_delays_under_a_tight_deadline_degrade_instead_of_hanging() {
    // Interplay of the fault layer and run control: every
    // `level_b.route_net` call stalls 30ms while the deadline is 5ms.
    // The run must trip promptly, declare every unfinished net with a
    // typed reason, keep whatever it committed oracle-clean — and
    // above all return instead of hanging.
    use overcell_router::core::RunSession;
    use overcell_router::exec::RunControl;
    use std::time::{Duration, Instant};

    let chip = small_random(6, 2, 3, 10, 42);
    let plan = fault::plan(5)
        .delay_at("level_b.route_net", 1.0, u64::MAX, 30_000)
        .build();
    let control = RunControl::new().with_deadline_in(Duration::from_millis(5));
    let session = RunSession::with_control(control);
    let started = Instant::now();
    let result = fault::with_plan(&plan, || {
        FlowKind::OverCell
            .build_with(FlowOptions::verified())
            .run_controlled(&chip.layout, &chip.placement, &session)
            .expect("a deadline trip is a degraded result, not an error")
    });
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the deadline must cut the delayed run short"
    );
    assert!(session.control.is_tripped(), "the deadline must trip");

    let degradation = result
        .degradation
        .expect("trip carries a degradation report");
    let mut failed: Vec<NetId> = result.design.failed.clone();
    failed.sort();
    let mut reported: Vec<NetId> = degradation.nets.iter().map(|d| d.net).collect();
    reported.sort();
    reported.dedup();
    assert_eq!(failed, reported, "every unfinished net must be reported");
    for net in chip.layout.net_ids() {
        assert!(
            result.design.route(net).is_some() || failed.binary_search(&net).is_ok(),
            "{net} neither routed nor declared failed"
        );
    }
    assert!(
        degradation
            .nets
            .iter()
            .all(|d| d.reason == DegradeReason::Cancelled),
        "deadline trips surface as Cancelled"
    );
    let report = result.verify.expect("verify requested");
    assert!(report.is_clean(), "{report}");
}
