//! The ocr-obs telemetry layer is observational only: enabling it must
//! not perturb the routed design by a single byte at any worker count,
//! and its exports must carry the per-phase spans and Level B counters
//! the CLI and CI smoke check rely on.

use overcell_router::core::{FlowKind, FlowOptions};
use overcell_router::gen::random::small_random;
use overcell_router::io::write_routes;
use overcell_router::obs::{self, json};

fn routes_text(
    kind: FlowKind,
    options: FlowOptions,
    threads: usize,
) -> (String, Option<obs::Telemetry>) {
    let chip = small_random(6, 2, 3, 10, 42);
    let result = overcell_router::exec::with_threads(threads, || {
        kind.build_with(options)
            .run(&chip.layout, &chip.placement)
            .expect("flow")
    });
    (
        write_routes(&result.layout, &result.design),
        result.telemetry,
    )
}

#[test]
fn routes_are_byte_identical_with_telemetry_on_and_off() {
    for kind in FlowKind::ALL {
        for threads in [1, 4] {
            let (plain, no_telemetry) = routes_text(kind, FlowOptions::default(), threads);
            let (instrumented, telemetry) = routes_text(kind, FlowOptions::instrumented(), threads);
            assert!(no_telemetry.is_none());
            assert!(telemetry.is_some(), "{kind}: telemetry attached");
            assert_eq!(
                plain, instrumented,
                "{kind} at {threads} thread(s): telemetry must not perturb routing"
            );
        }
    }
}

#[test]
fn verify_report_is_identical_with_telemetry_on_and_off() {
    let chip = small_random(6, 2, 3, 10, 7);
    let run = |options: FlowOptions| {
        FlowKind::OverCell
            .build_with(options)
            .run(&chip.layout, &chip.placement)
            .expect("flow")
    };
    let plain = run(FlowOptions::verified());
    let instrumented = run(FlowOptions::verified().telemetry(true));
    assert_eq!(plain.verify, instrumented.verify);
}

#[test]
fn overcell_telemetry_carries_phases_and_rip_counters() {
    let (_, telemetry) = routes_text(FlowKind::OverCell, FlowOptions::instrumented(), 4);
    let t = telemetry.expect("telemetry attached");
    let aggs = t.aggregate();
    for phase in ["flow.partition", "flow.level_a", "flow.level_b"] {
        let agg = aggs
            .iter()
            .find(|a| a.name == phase)
            .unwrap_or_else(|| panic!("missing span `{phase}`"));
        assert!(agg.total_ns > 0, "`{phase}` must have nonzero timing");
    }
    // Rip/retry counters are declared even when the run never rips.
    for counter in [
        "level_b.rips",
        "level_b.retries",
        "level_b.doomed_terminals",
    ] {
        assert!(t.counter(counter).is_some(), "missing counter `{counter}`");
    }
    // The exec pool reported per-worker activity for the parallel
    // stages (Level A channels fan out across it).
    assert!(t.counter("exec.tasks").is_some_and(|v| v > 0));
}

#[test]
fn stats_json_round_trips_through_the_bundled_parser() {
    let (_, telemetry) = routes_text(FlowKind::OverCell, FlowOptions::instrumented(), 2);
    let t = telemetry.expect("telemetry attached");
    let text = obs::stats_json(&[("testchip", "overcell", &t)]);
    let doc = json::parse(&text).expect("stats JSON parses");
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("ocr-stats-v1")
    );
    let runs = doc
        .get("runs")
        .and_then(json::Value::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);
    assert_eq!(
        runs[0].get("chip").and_then(json::Value::as_str),
        Some("testchip")
    );
    let spans = runs[0]
        .get("spans")
        .and_then(json::Value::as_array)
        .expect("spans array");
    assert!(spans
        .iter()
        .any(|s| s.get("name").and_then(json::Value::as_str) == Some("flow.level_b")));

    // The Chrome trace is valid JSON too, with one duration event per
    // recorded span occurrence.
    let trace = obs::chrome_trace(&[("testchip", "overcell", &t)]);
    let events = json::parse(&trace).expect("trace parses");
    let events = events.as_array().expect("trace is a JSON array");
    let durations = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .count();
    assert_eq!(durations, t.events.len());
}
