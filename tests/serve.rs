//! Batch-service contract (DESIGN.md §11): the `ocr-serve` scheduler is
//! deterministic, preemption is invisible in the answers, and a
//! poisoned job never takes the daemon or its siblings down.
//!
//! * Same job set + same budgets ⇒ byte-identical admission log and
//!   byte-identical routed outputs at any `OCR_THREADS`.
//! * A job preempted into an `ocr-ckpt-v1` checkpoint and resumed —
//!   possibly several times — produces exactly the routes of an
//!   uninterrupted standalone run.
//! * Per-job faults (injected panics, bad specs, step caps) become
//!   typed terminal statuses; every submission is answered.

use overcell_router::core::{ordering_from_name, FlowKind, FlowOptions};
use overcell_router::exec::with_threads;
use overcell_router::fault;
use overcell_router::gen::random::small_random;
use overcell_router::gen::GeneratedChip;
use overcell_router::io::ckpt::fnv1a_64;
use overcell_router::io::job::{parse_results, write_jobs, JobSpec};
use overcell_router::io::{write_chip, write_routes};
use overcell_router::serve::{
    load_job, run_jobs, serve, Intake, JobInput, JobStatus, LoadedChip, ServeConfig, ServeReport,
    SpoolIntake,
};
use std::path::PathBuf;

fn chip(seed: u64) -> GeneratedChip {
    small_random(6, 2, 3, 10, seed)
}

/// An in-memory submission (no spool round-trip) for scheduler tests.
fn input(name: &str, chip: &GeneratedChip, kind: FlowKind, priority: i64) -> JobInput {
    let mut spec = JobSpec::new(name, format!("{name}.ocr"));
    spec.flow = kind.name().to_string();
    spec.priority = priority;
    JobInput {
        spec,
        load: Ok(LoadedChip {
            kind,
            ordering: None,
            layout: chip.layout.clone(),
            placement: chip.placement.clone(),
            chip_hash: fnv1a_64(&write_chip(&chip.layout, &chip.placement)),
        }),
        base: None,
    }
}

/// Three over-cell jobs sized so a small quantum preempts at least one.
fn batch() -> Vec<JobInput> {
    vec![
        input("a", &chip(42), FlowKind::OverCell, 0),
        input("b", &chip(5), FlowKind::OverCell, 0),
        input("c", &chip(7), FlowKind::OverCell, 1),
    ]
}

fn tight() -> ServeConfig {
    ServeConfig {
        quantum: 8,
        max_concurrent: 2,
        ..ServeConfig::default()
    }
}

fn routes_of(report: &ServeReport, name: &str) -> String {
    report
        .jobs
        .iter()
        .find(|j| j.name == name)
        .unwrap_or_else(|| panic!("job {name} answered"))
        .routes
        .clone()
        .unwrap_or_else(|| panic!("job {name} has routes"))
}

#[test]
fn admission_log_and_outputs_are_identical_across_thread_counts() {
    let seq = with_threads(1, || run_jobs(batch(), &tight())).expect("serves");
    let par = with_threads(4, || run_jobs(batch(), &tight())).expect("serves");
    assert_eq!(
        seq.log, par.log,
        "admission log must not depend on OCR_THREADS"
    );
    assert_eq!(seq.total_steps, par.total_steps);
    for name in ["a", "b", "c"] {
        assert_eq!(
            routes_of(&seq, name),
            routes_of(&par, name),
            "job {name}: routed bytes must not depend on OCR_THREADS"
        );
    }
    assert!(
        seq.jobs.iter().any(|j| j.preempts > 0),
        "the tight quantum must preempt at least one job:\n{}",
        seq.log.join("\n")
    );
}

#[test]
fn preempted_and_resumed_jobs_match_uninterrupted_runs() {
    let report = run_jobs(batch(), &tight()).expect("serves");
    let preempted = report.jobs.iter().filter(|j| j.preempts > 0).count();
    assert!(
        preempted >= 1,
        "scheduler must slice:\n{}",
        report.log.join("\n")
    );
    for (name, seed) in [("a", 42), ("b", 5), ("c", 7)] {
        let job = report
            .jobs
            .iter()
            .find(|j| j.name == name)
            .expect("answered");
        assert_eq!(job.status, JobStatus::Done, "{name}: {}", job.detail);
        let chip = chip(seed);
        let direct = FlowKind::OverCell
            .build_with(FlowOptions::default())
            .run(&chip.layout, &chip.placement)
            .expect("direct run");
        assert_eq!(
            routes_of(&report, name),
            write_routes(&direct.layout, &direct.design),
            "job {name} ({} preemptions): serve answer must equal a \
             standalone `ocr route` run",
            job.preempts
        );
    }
}

#[test]
fn poisoned_job_leaves_daemon_and_siblings_unharmed() {
    // The plan's two fires cover the slice attempt and its retry, so
    // the victim is terminally poisoned; the fault site is per-job, so
    // siblings never trip it.
    let plan = fault::plan(9).panic_at("serve.job.b", 1.0, 2).build();
    let report = fault::with_plan(&plan, || run_jobs(batch(), &tight())).expect("serves");
    let victim = report
        .jobs
        .iter()
        .find(|j| j.name == "b")
        .expect("answered");
    assert_eq!(victim.status, JobStatus::Failed);
    assert!(
        victim.detail.contains("poisoned"),
        "victim detail: {}",
        victim.detail
    );
    for name in ["a", "c"] {
        let job = report
            .jobs
            .iter()
            .find(|j| j.name == name)
            .expect("answered");
        assert_eq!(
            job.status,
            JobStatus::Done,
            "sibling {name} must be unharmed: {}",
            job.detail
        );
    }
    // And the answers still match fault-free standalone runs.
    let clean = run_jobs(batch(), &tight()).expect("serves");
    for name in ["a", "c"] {
        assert_eq!(routes_of(&report, name), routes_of(&clean, name));
    }
}

#[test]
fn global_budget_exhaustion_finalizes_with_typed_statuses() {
    let config = ServeConfig {
        quantum: 8,
        max_concurrent: 1,
        max_total_steps: Some(8),
        ..ServeConfig::default()
    };
    let jobs = vec![
        input("first", &chip(42), FlowKind::OverCell, 0),
        input("starved", &chip(5), FlowKind::OverCell, 0),
    ];
    let report = run_jobs(jobs, &config).expect("serves");
    let first = report
        .jobs
        .iter()
        .find(|j| j.name == "first")
        .expect("answered");
    assert_eq!(
        first.status,
        JobStatus::Preempted,
        "the running job ends preempted when the global budget drains: {}",
        first.detail
    );
    assert!(first.steps > 0);
    assert!(
        first.routes.is_some(),
        "a preempted job is answered with its partial design"
    );
    let starved = report
        .jobs
        .iter()
        .find(|j| j.name == "starved")
        .expect("answered");
    assert_eq!(
        starved.status,
        JobStatus::Rejected,
        "a job that never got a slice ends rejected: {}",
        starved.detail
    );
    assert_eq!(starved.steps, 0);
    // Deterministic: the budget drains at the same point every time.
    let jobs = vec![
        input("first", &chip(42), FlowKind::OverCell, 0),
        input("starved", &chip(5), FlowKind::OverCell, 0),
    ];
    let again = run_jobs(jobs, &config).expect("serves");
    assert_eq!(report.log, again.log);
}

#[test]
fn per_job_step_cap_salvages_instead_of_preempting_forever() {
    let mut job = input("capped", &chip(42), FlowKind::OverCell, 0);
    job.spec.max_steps = Some(5);
    job.spec.salvage = true;
    let report = run_jobs(vec![job], &ServeConfig::default()).expect("serves");
    let capped = &report.jobs[0];
    assert_eq!(
        capped.status,
        JobStatus::Salvaged,
        "hitting the job's own cap is a complete (degraded) answer: {}",
        capped.detail
    );
    assert!(capped.degraded > 0, "the unfinished nets are degradations");
    assert_eq!(capped.preempts, 0, "its own cap is not a preemption");
}

#[test]
fn bad_submissions_are_answered_not_dropped() {
    let mut jobs = batch();
    jobs.push(JobInput {
        spec: JobSpec::new("broken", "missing.ocr"),
        load: Err("missing.ocr: no such chip".into()),
        base: None,
    });
    jobs.push(input("a", &chip(3), FlowKind::OverCell, 0)); // duplicate name
    let report = run_jobs(jobs, &tight()).expect("serves");
    assert_eq!(report.jobs.len(), 5, "every submission is answered");
    let broken = report
        .jobs
        .iter()
        .find(|j| j.name == "broken")
        .expect("answered");
    assert_eq!(broken.status, JobStatus::Rejected);
    assert!(broken.detail.contains("missing.ocr"));
    let dup = report
        .jobs
        .iter()
        .filter(|j| j.name == "a" && j.status == JobStatus::Rejected)
        .count();
    assert_eq!(dup, 1, "the duplicate is rejected, the original runs");
}

#[test]
fn late_duplicate_name_never_clobbers_the_original_answer() {
    /// Delivers its batches one per poll, but only once the engine is
    /// idle — so the duplicate arrives strictly after the original job
    /// has been answered.
    struct Late {
        queued: Vec<Vec<JobInput>>,
    }
    impl Intake for Late {
        fn poll(&mut self, idle: bool) -> Option<Vec<JobInput>> {
            if !idle {
                return Some(Vec::new());
            }
            if self.queued.is_empty() {
                None
            } else {
                Some(self.queued.remove(0))
            }
        }
    }
    let out = scratch("dup");
    let config = ServeConfig {
        out: Some(out.clone()),
        ..ServeConfig::default()
    };
    let original = input("a", &chip(42), FlowKind::OverCell, 0);
    let duplicate = input("a", &chip(3), FlowKind::OverCell, 0);
    let mut intake = Late {
        queued: vec![vec![duplicate]],
    };
    let report = serve(vec![original], &mut intake, &config).expect("serves");
    assert_eq!(report.jobs.len(), 2, "both submissions are answered");
    assert_eq!(report.jobs[0].status, JobStatus::Done);
    assert_eq!(report.jobs[1].status, JobStatus::Rejected);
    // The first job owns out/a/: the rejection must not touch it.
    let status = std::fs::read_to_string(out.join("a").join("status")).expect("status file");
    assert_eq!(status, "done\n", "the original's status survives");
    assert!(out.join("a").join("routes.txt").exists());
    // And the service's own results file still re-parses: one record
    // per name, owned by the first answer.
    let results = std::fs::read_to_string(out.join("results.txt")).expect("results.txt");
    let records = parse_results(&results).expect("service results re-parse");
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].name, "a");
    assert_eq!(records[0].status, "done");
    assert_eq!(records, report.records());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn order_jobs_route_with_the_requested_strategy() {
    let dir = scratch("order");
    let chip = chip(42);
    std::fs::write(
        dir.join("chip.ocr"),
        write_chip(&chip.layout, &chip.placement),
    )
    .expect("chip");
    let mut ordered = JobSpec::new("crit", "chip.ocr");
    ordered.order = Some("criticality".into());
    let mut bogus = JobSpec::new("bogus", "chip.ocr");
    bogus.order = Some("best".into());
    let jobs = vec![load_job(ordered, &dir), load_job(bogus, &dir)];
    let report = run_jobs(jobs, &ServeConfig::default()).expect("serves");
    assert_eq!(report.jobs[0].status, JobStatus::Done);
    assert_eq!(report.jobs[1].status, JobStatus::Rejected);
    assert!(report.jobs[1].detail.contains("unknown ordering"));
    // The job's routes are exactly a standalone `--order criticality`
    // run — the ordering really reached the flow.
    let direct = FlowKind::OverCell
        .build_with_ordering(
            FlowOptions::default(),
            Some(ordering_from_name("criticality").expect("known ordering")),
        )
        .run(&chip.layout, &chip.placement)
        .expect("direct run");
    assert_eq!(
        routes_of(&report, "crit"),
        write_routes(&direct.layout, &direct.design)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A collision-free scratch directory for the on-disk spool test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ocr-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn spool_drain_writes_per_job_answers_to_disk() {
    let spool = scratch("spool");
    let out = scratch("out");
    let chip = chip(42);
    std::fs::write(
        spool.join("chip.ocr"),
        write_chip(&chip.layout, &chip.placement),
    )
    .expect("chip");
    let mut salvage = JobSpec::new("deep", "chip.ocr");
    salvage.salvage = true;
    std::fs::write(
        spool.join("batch.job"),
        write_jobs(&[JobSpec::new("quick", "chip.ocr"), salvage]),
    )
    .expect("job file");
    let config = ServeConfig {
        out: Some(out.clone()),
        quantum: 8,
        max_concurrent: 2,
        ..ServeConfig::default()
    };
    let mut intake = SpoolIntake::new(&spool, 1, true);
    let report = serve(Vec::new(), &mut intake, &config).expect("serves");
    assert!(intake.take_error().is_none());
    assert_eq!(report.jobs.len(), 2);
    assert!(report.jobs.iter().all(|j| j.status == JobStatus::Done));
    // The service's on-disk answers: per-job dirs plus service files.
    for name in ["quick", "deep"] {
        let dir = out.join(name);
        let status = std::fs::read_to_string(dir.join("status")).expect("status file");
        assert_eq!(status, "done\n");
        let routes = std::fs::read_to_string(dir.join("routes.txt")).expect("routes file");
        assert_eq!(routes, routes_of(&report, name));
        let stats = std::fs::read_to_string(dir.join("stats.json")).expect("stats file");
        let doc = overcell_router::obs::json::parse(&stats).expect("stats.json parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("ocr-stats-v1")
        );
    }
    let log = std::fs::read_to_string(out.join("serve.log")).expect("serve.log");
    assert_eq!(log, format!("{}\n", report.log.join("\n")));
    let results = std::fs::read_to_string(out.join("results.txt")).expect("results.txt");
    let records = parse_results(&results).expect("results parse");
    assert_eq!(records.len(), 2);
    assert_eq!(records, report.records());
    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&out);
}
