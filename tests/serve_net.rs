//! Robustness contract of the TCP front-end (DESIGN.md §16): a job
//! submitted over `ocr-wire-v1` is byte-identical to the same job
//! spooled on disk — at any `OCR_THREADS`, under injected `net.*`
//! faults, and across a `--journal` kill-restart — while hostile
//! clients (slow loris, mid-frame disconnect, over-quota storms,
//! overload) get typed rejections and never poison the daemon.

use overcell_router::exec::with_threads;
use overcell_router::fault;
use overcell_router::gen::random::small_random;
use overcell_router::io::job::JobSpec;
use overcell_router::io::wire::{self, RejectReason, Response};
use overcell_router::io::write_chip;
use overcell_router::obs::{with_collector, Collector};
use overcell_router::serve::{
    client_connect, client_request, load_job, run_jobs, serve, Intake, JobStatus, NetConfig,
    NetIntake, PairedIntake, QuotaConfig, ServeConfig, ServeReport, SpoolIntake,
};
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const JOBS: [(&str, u64); 3] = [("alpha", 42), ("beta", 5), ("gamma", 7)];

fn chip_text(seed: u64) -> String {
    let c = small_random(6, 2, 3, 10, seed);
    write_chip(&c.layout, &c.placement)
}

/// A collision-free scratch directory.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ocr-serve-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A journaled service config over `root`; the tight quantum forces
/// preemptions so checkpoints ride along with every submission path.
fn config(root: &Path) -> ServeConfig {
    ServeConfig {
        out: Some(root.join("out")),
        quantum: 8,
        max_concurrent: 2,
        journal: Some(root.join("wal")),
        ..ServeConfig::default()
    }
}

/// A front-end config whose staging directory is durable under `root`
/// (so `--journal` recovery can reload TCP-submitted chips) and whose
/// poll interval keeps tests snappy.
fn net_config(root: &Path) -> NetConfig {
    NetConfig {
        stage: Some(root.join("stage")),
        poll_ms: 50,
        ..NetConfig::default()
    }
}

fn spec(name: &str) -> JobSpec {
    // The chip field is a placeholder: the server stages the inline
    // chip text and rewrites it.
    JobSpec::new(name, "-")
}

/// The bytes a TCP run must reproduce: `results.txt` plus every job's
/// `status` and `routes.txt`.
fn answer_bytes(root: &Path, names: &[&str]) -> Vec<(String, String)> {
    let out = root.join("out");
    let mut files = vec!["results.txt".to_string()];
    for name in names {
        files.push(format!("{name}/status"));
        files.push(format!("{name}/routes.txt"));
    }
    files
        .into_iter()
        .map(|f| {
            let text = std::fs::read_to_string(out.join(&f))
                .unwrap_or_else(|e| panic!("{}: {e}", out.join(&f).display()));
            (f, text)
        })
        .collect()
}

fn assert_same_bytes(tag: &str, got: &[(String, String)], expected: &[(String, String)]) {
    for ((file, bytes), (ref_file, ref_bytes)) in got.iter().zip(expected) {
        assert_eq!(file, ref_file);
        assert_eq!(
            bytes, ref_bytes,
            "{tag}: `{file}` must match the spooled reference byte for byte"
        );
    }
}

/// The spooled reference: the same jobs loaded from disk, no network.
fn reference(tag: &str) -> (PathBuf, Vec<(String, String)>) {
    let root = scratch(tag);
    let jobs: Vec<_> = JOBS
        .iter()
        .map(|&(name, seed)| {
            let file = format!("{name}.ocr");
            std::fs::write(root.join(&file), chip_text(seed)).expect("chip");
            load_job(JobSpec::new(name, file), &root)
        })
        .collect();
    let report = run_jobs(jobs, &config(&root)).expect("reference serves");
    for job in &report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
    let names: Vec<&str> = JOBS.iter().map(|&(n, _)| n).collect();
    let bytes = answer_bytes(&root, &names);
    (root, bytes)
}

/// Runs the engine over `intake` on its own thread, optionally pinned
/// to a pool width and armed with a fault plan. `with_threads` and
/// fault plans are thread-local, so both must be installed inside the
/// engine's own thread.
fn serve_thread<I: Intake + Send + 'static>(
    mut intake: I,
    cfg: ServeConfig,
    threads: Option<usize>,
    plan: Option<fault::FaultPlan>,
) -> std::thread::JoinHandle<ServeReport> {
    std::thread::spawn(move || {
        let run = |intake: &mut I| match threads {
            Some(n) => with_threads(n, || serve(Vec::new(), intake, &cfg)),
            None => serve(Vec::new(), intake, &cfg),
        };
        let report = match plan {
            Some(p) => fault::with_plan(&p, || run(&mut intake)),
            None => run(&mut intake),
        };
        report.expect("the service must not error")
    })
}

fn submit(addr: &str, spec: &JobSpec, chip: &str) -> Result<Response, wire::WireError> {
    let stream = client_connect(addr, Duration::from_secs(10))?;
    client_request(&stream, &wire::submit_payload(spec, chip))
}

fn expect_accepted(addr: &str, spec: &JobSpec, chip: &str) {
    match submit(addr, spec, chip) {
        Ok(Response::Accepted(name)) => assert_eq!(name, spec.name),
        other => panic!("{}: expected accepted, got {other:?}", spec.name),
    }
}

fn wire_shutdown(addr: &str) {
    let stream = client_connect(addr, Duration::from_secs(10)).expect("shutdown connect");
    match client_request(&stream, "shutdown") {
        Ok(Response::Closing) => {}
        other => panic!("expected closing, got {other:?}"),
    }
}

/// The tentpole contract: TCP submissions produce byte-identical
/// answers to the spooled reference, sequentially and pooled.
#[test]
fn tcp_submissions_are_byte_identical_to_spooled_ones() {
    let (ref_root, expected) = reference("ref");
    for (k, threads) in [None, Some(1)].into_iter().enumerate() {
        let root = scratch(&format!("tcp-{k}"));
        let intake = NetIntake::bind(net_config(&root)).expect("bind");
        let addr = intake.local_addr().to_string();
        let handle = serve_thread(intake, config(&root), threads, None);
        for (name, seed) in JOBS {
            expect_accepted(&addr, &spec(name), &chip_text(seed));
        }
        wire_shutdown(&addr);
        let report = handle.join().expect("serve thread");
        for job in &report.jobs {
            assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
        }
        let names: Vec<&str> = JOBS.iter().map(|&(n, _)| n).collect();
        assert_same_bytes(
            &format!("threads {threads:?}"),
            &answer_bytes(&root, &names),
            &expected,
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// Injected faults at every `net.*` site (a dropped accept, a failed
/// read, a failed response write) cost retries, never bytes.
#[test]
fn byte_identity_survives_injected_net_faults() {
    let (ref_root, expected) = reference("fref");
    let root = scratch("tcp-faults");
    let plan = fault::plan(7)
        .fire_at("net.accept", 1.0, 1)
        .fire_at("net.read", 1.0, 1)
        .fire_at("net.write", 1.0, 1)
        .build();
    let intake =
        fault::with_plan(&plan, || NetIntake::bind(net_config(&root))).expect("bind under faults");
    let addr = intake.local_addr().to_string();
    let handle = serve_thread(intake, config(&root), None, Some(plan.clone()));
    // Burn every injected fault down with pings: a dropped connection
    // or failed exchange is retried, and each retry consumes fires.
    let mut tries = 0;
    while plan.total_fires() < 3 {
        tries += 1;
        assert!(
            tries < 200,
            "fault burn-down stalled at {} fires",
            plan.total_fires()
        );
        let _ =
            client_connect(&addr, Duration::from_secs(2)).and_then(|s| client_request(&s, "ping"));
        std::thread::sleep(Duration::from_millis(10));
    }
    for (name, seed) in JOBS {
        expect_accepted(&addr, &spec(name), &chip_text(seed));
    }
    wire_shutdown(&addr);
    let report = handle.join().expect("serve thread");
    for job in &report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
    let names: Vec<&str> = JOBS.iter().map(|&(n, _)| n).collect();
    assert_same_bytes("net faults", &answer_bytes(&root, &names), &expected);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// A TCP submission is as durable as a spooled one: the daemon is
/// killed mid-run after the durable accept, and the restart reloads
/// the chip from the staging directory and finishes byte-identically.
#[test]
fn tcp_submissions_survive_a_journal_kill_restart() {
    // Single-job spooled reference.
    let ref_root = scratch("kref");
    let file = "alpha.ocr".to_string();
    std::fs::write(ref_root.join(&file), chip_text(42)).expect("chip");
    let job = load_job(JobSpec::new("alpha", file), &ref_root);
    let report = run_jobs(vec![job], &config(&ref_root)).expect("reference serves");
    assert_eq!(
        report.jobs[0].status,
        JobStatus::Done,
        "{}",
        report.jobs[0].detail
    );
    let expected = answer_bytes(&ref_root, &["alpha"]);

    for (k, threads) in [None, Some(1)].into_iter().enumerate() {
        let root = scratch(&format!("kill-{k}"));
        let plan = fault::plan(3).kill_at("serve.kill.settle", 1).build();
        let intake = NetIntake::bind(net_config(&root)).expect("bind");
        let addr = intake.local_addr().to_string();
        let handle = serve_thread(intake, config(&root), threads, Some(plan));
        // The accepted response is a durability promise: by the time it
        // arrives the job is journaled and its chip staged on disk.
        expect_accepted(&addr, &spec("alpha"), &chip_text(42));
        assert!(
            handle.join().is_err(),
            "the kill site must take the daemon down mid-run"
        );
        // Restart on the same journal with a closed intake: the job
        // must be recovered entirely from the journal + staged chip.
        let restart = || run_jobs(Vec::new(), &config(&root)).expect("restarted service serves");
        let report = match threads {
            Some(n) => with_threads(n, restart),
            None => restart(),
        };
        assert_eq!(report.jobs.len(), 1, "{}", report.log.join("\n"));
        assert_eq!(
            report.jobs[0].status,
            JobStatus::Done,
            "{}",
            report.jobs[0].detail
        );
        assert_same_bytes(
            &format!("kill-restart threads {threads:?}"),
            &answer_bytes(&root, &["alpha"]),
            &expected,
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// A slow-loris client (frame started, never finished) is answered
/// with a typed `error timeout`, counted, and disconnected — while the
/// daemon keeps serving other clients.
#[test]
fn slow_loris_gets_a_typed_timeout_and_the_daemon_keeps_serving() {
    let root = scratch("loris");
    let collector = Collector::new();
    let net = NetConfig {
        io_timeout_ms: 150,
        idle_timeout_ms: 2000,
        ..net_config(&root)
    };
    // No engine behind the intake: deadlines and pings are pure
    // front-end behaviour.
    let intake = with_collector(&collector, || NetIntake::bind(net)).expect("bind");
    let addr = intake.local_addr().to_string();
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("write timeout");
    wire::write_magic(&mut (&stream)).expect("client magic");
    wire::read_magic(&mut (&stream)).expect("server magic");
    // Start a frame header, then stall: the per-frame I/O deadline
    // must fire even though the idle allowance is generous.
    (&stream).write_all(b"f 10").expect("partial header");
    let payload = wire::read_frame(&mut (&stream), 1 << 20)
        .expect("timeout frame")
        .expect("a response, not a close");
    match wire::parse_response(&payload).expect("typed response") {
        Response::Error { kind, .. } => assert_eq!(kind, "timeout"),
        other => panic!("expected a timeout error, got {other:?}"),
    }
    // The daemon is unharmed: a healthy client still gets served.
    let healthy = client_connect(&addr, Duration::from_secs(5)).expect("second client");
    assert_eq!(
        client_request(&healthy, "ping").expect("ping"),
        Response::Pong
    );
    drop(intake);
    assert!(
        collector.snapshot().counter("net.timeouts").unwrap_or(0) >= 1,
        "the timeout must be counted"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A client that dies mid-frame tears its own connection only: the
/// handler sees a typed torn error and the daemon keeps serving.
#[test]
fn mid_frame_disconnect_leaves_the_daemon_serving() {
    let root = scratch("torn");
    let collector = Collector::new();
    let intake = with_collector(&collector, || NetIntake::bind(net_config(&root))).expect("bind");
    let addr = intake.local_addr().to_string();
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        wire::write_magic(&mut (&stream)).expect("client magic");
        wire::read_magic(&mut (&stream)).expect("server magic");
        // A frame header promising 100 bytes, a few bytes of payload,
        // then a hard disconnect.
        (&stream)
            .write_all(b"f 100 0123456789abcdef\npartial")
            .expect("torn frame");
    } // dropped: RST/EOF mid-frame
    let healthy = client_connect(&addr, Duration::from_secs(5)).expect("second client");
    assert_eq!(
        client_request(&healthy, "ping").expect("ping"),
        Response::Pong
    );
    drop(intake);
    assert!(
        collector.snapshot().counter("net.conns").unwrap_or(0) >= 2,
        "both connections must be counted"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Per-tenant token buckets: a tenant that exhausts its burst gets
/// `rejected … quota retry-after`, other tenants (and the anonymous
/// tenant) are unaffected, and the rejection is counted.
#[test]
fn over_quota_tenants_get_typed_rejections() {
    let root = scratch("quota");
    let collector = Collector::new();
    let net = NetConfig {
        // Rate 0 never refills: each tenant gets exactly `burst`
        // submissions, which makes the storm deterministic.
        quota: Some(QuotaConfig {
            rate_per_sec: 0,
            burst: 2,
        }),
        ..net_config(&root)
    };
    let intake = with_collector(&collector, || NetIntake::bind(net)).expect("bind");
    let addr = intake.local_addr().to_string();
    let handle = serve_thread(intake, config(&root), None, None);
    let tenant_spec = |name: &str, tenant: Option<&str>| {
        let mut s = spec(name);
        s.tenant = tenant.map(str::to_string);
        s
    };
    expect_accepted(&addr, &tenant_spec("a1", Some("acme")), &chip_text(5));
    expect_accepted(&addr, &tenant_spec("a2", Some("acme")), &chip_text(7));
    match submit(&addr, &tenant_spec("a3", Some("acme")), &chip_text(9)).expect("wire") {
        Response::Rejected {
            name,
            reason: RejectReason::Quota,
            retry_after_ms,
            detail,
        } => {
            assert_eq!(name, "a3");
            assert_eq!(retry_after_ms, 60_000, "rate 0 advertises the long retry");
            assert!(detail.contains("acme"), "detail names the tenant: {detail}");
        }
        other => panic!("expected a quota rejection, got {other:?}"),
    }
    // Another tenant and the anonymous tenant have their own buckets.
    expect_accepted(&addr, &tenant_spec("b1", Some("beta-corp")), &chip_text(9));
    expect_accepted(&addr, &tenant_spec("anon", None), &chip_text(11));
    wire_shutdown(&addr);
    let report = handle.join().expect("serve thread");
    assert_eq!(report.jobs.len(), 4, "{}", report.log.join("\n"));
    for job in &report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
    assert_eq!(
        collector
            .snapshot()
            .counter("net.rejected.quota")
            .unwrap_or(0),
        1
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A full submission queue sheds with a typed overload rejection and
/// a retry hint instead of queueing unbounded work.
#[test]
fn a_full_pending_queue_sheds_with_overload() {
    let root = scratch("overload");
    let collector = Collector::new();
    let net = NetConfig {
        max_pending: 0,
        ..net_config(&root)
    };
    let intake = with_collector(&collector, || NetIntake::bind(net)).expect("bind");
    let addr = intake.local_addr().to_string();
    match submit(&addr, &spec("shed"), &chip_text(5)).expect("wire") {
        Response::Rejected {
            reason: RejectReason::Overload,
            retry_after_ms,
            detail,
            ..
        } => {
            assert_eq!(retry_after_ms, 100, "poll_ms 50 floors the hint at 100ms");
            assert!(detail.contains("queue"), "{detail}");
        }
        other => panic!("expected an overload rejection, got {other:?}"),
    }
    drop(intake);
    assert_eq!(
        collector
            .snapshot()
            .counter("net.rejected.overload")
            .unwrap_or(0),
        1
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Once the engine's global step budget drains it tells the intake
/// ([`Intake::budget_exhausted`]), and new submissions are shed with a
/// typed overload rejection instead of being accepted and rejected.
#[test]
fn an_exhausted_step_budget_sheds_new_submissions() {
    let root = scratch("budget");
    let collector = Collector::new();
    let intake = with_collector(&collector, || NetIntake::bind(net_config(&root))).expect("bind");
    let addr = intake.local_addr().to_string();
    let cfg = ServeConfig {
        max_total_steps: Some(1),
        ..config(&root)
    };
    let handle = serve_thread(intake, cfg, None, None);
    expect_accepted(&addr, &spec("first"), &chip_text(42));
    // The engine notices exhaustion at its next loop turn; submissions
    // racing that window may still be accepted (and finalized
    // rejected), but one soon gets the typed shed.
    let mut shed = None;
    for i in 0..100 {
        match submit(&addr, &spec(&format!("extra-{i}")), &chip_text(5)).expect("wire") {
            Response::Rejected {
                reason: RejectReason::Overload,
                retry_after_ms,
                detail,
                ..
            } => {
                shed = Some((retry_after_ms, detail));
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let (retry_after_ms, detail) = shed.expect("budget exhaustion must shed submissions");
    assert_eq!(retry_after_ms, 100);
    assert!(detail.contains("budget"), "{detail}");
    wire_shutdown(&addr);
    let report = handle.join().expect("serve thread");
    assert_eq!(
        report.jobs[0].status,
        JobStatus::Preempted,
        "the 1-step budget preempts the first job: {}",
        report.jobs[0].detail
    );
    assert!(
        collector
            .snapshot()
            .counter("net.rejected.overload")
            .unwrap_or(0)
            >= 1
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Jobs landing via spool AND TCP while a round is in flight are
/// admitted next round in the deterministic order — strict priority,
/// then fairness, then submission order — and answer byte-identically
/// to the same jobs submitted up front.
#[test]
fn mid_round_arrivals_from_spool_and_tcp_admit_in_priority_order() {
    let root = scratch("paired");
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).expect("spool dir");
    std::fs::write(spool.join("a.ocr"), chip_text(42)).expect("chip");
    std::fs::write(spool.join("a.job"), "ocr-jobs-v1\njob routeA a.ocr\n").expect("job");
    let cfg = ServeConfig {
        out: Some(root.join("out")),
        quantum: 4,
        max_concurrent: 1,
        journal: Some(root.join("wal")),
        ..ServeConfig::default()
    };
    // Stretch the first rounds so the mid-round arrivals land while
    // `routeA` still has most of its work ahead.
    let plan = fault::plan(11)
        .delay_at("serve.kill.round", 1.0, 10, 250_000)
        .build();
    let net = NetIntake::bind(net_config(&root)).expect("bind");
    let addr = net.local_addr().to_string();
    let paired = PairedIntake::new(SpoolIntake::new(&spool, 50, false), net);
    let handle = serve_thread(paired, cfg.clone(), None, Some(plan));
    let mut high = spec("tcpHigh");
    high.priority = 2;
    expect_accepted(&addr, &high, &chip_text(5));
    std::fs::write(spool.join("s.ocr"), chip_text(7)).expect("chip");
    std::fs::write(
        spool.join("s.job"),
        "ocr-jobs-v1\njob spoolMid s.ocr priority 1\n",
    )
    .expect("job");
    expect_accepted(&addr, &spec("tcpLow"), &chip_text(9));
    wire_shutdown(&addr);
    let report = handle.join().expect("serve thread");
    let names = ["routeA", "tcpHigh", "spoolMid", "tcpLow"];
    assert_eq!(report.jobs.len(), names.len(), "{}", report.log.join("\n"));
    for job in &report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
    // Completion order proves the admission order: strict priority
    // first (tcpHigh, then spoolMid), then the priority-0 pair
    // round-robin their slices — and on equal slice counts the
    // earlier submission (routeA) wins the tie, so it finishes first.
    let finished: Vec<String> = report
        .log
        .iter()
        .filter_map(|l| {
            let (_, rest) = l.split_once(": finish ")?;
            Some(rest.split_whitespace().next().unwrap_or("").to_string())
        })
        .collect();
    assert_eq!(
        finished,
        ["tcpHigh", "spoolMid", "routeA", "tcpLow"],
        "admission must follow (priority desc, slices asc, submission):\n{}",
        report.log.join("\n")
    );
    // And the answers are byte-identical to the same four jobs
    // submitted up front in the same submission order.
    let ref_root = scratch("paired-ref");
    for (name, seed) in [
        ("routeA", 42),
        ("tcpHigh", 5),
        ("spoolMid", 7),
        ("tcpLow", 9),
    ] {
        std::fs::write(ref_root.join(format!("{name}.ocr")), chip_text(seed)).expect("chip");
    }
    let jobs: Vec<_> = [
        ("routeA", 0),
        ("tcpHigh", 2),
        ("spoolMid", 1),
        ("tcpLow", 0),
    ]
    .into_iter()
    .map(|(name, priority)| {
        let mut s = JobSpec::new(name, format!("{name}.ocr"));
        s.priority = priority;
        load_job(s, &ref_root)
    })
    .collect();
    let ref_cfg = ServeConfig {
        out: Some(ref_root.join("out")),
        journal: Some(ref_root.join("wal")),
        ..cfg
    };
    let ref_report = run_jobs(jobs, &ref_cfg).expect("reference serves");
    for job in &ref_report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
    assert_same_bytes(
        "mid-round arrivals",
        &answer_bytes(&root, &names),
        &answer_bytes(&ref_root, &names),
    );
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&ref_root);
}
