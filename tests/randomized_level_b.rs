//! Randomized tests on the Level B over-cell router, driven by the
//! in-tree deterministic PRNG (fixed seeds, reproducible failures).

use overcell_router::core::mbfs::{search_min_corner_paths, SearchWindow};
use overcell_router::core::steiner::rectilinear_mst_length;
use overcell_router::core::tig::Tig;
use overcell_router::core::{config::LevelBConfig, level_b::LevelBRouter};
use overcell_router::gen::rng::Rng;
use overcell_router::geom::{Layer, LayerSet, Point, Rect};
use overcell_router::grid::{GridModel, TrackSet};
use overcell_router::maze::{route_maze, MazeOptions};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass, Obstacle};

const CASES: usize = 48;

fn grid_point(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(0i64..=20) * 10, rng.gen_range(0i64..=20) * 10)
}

fn layout_with(nets: Vec<Vec<Point>>, obstacles: Vec<Rect>) -> Layout {
    let mut layout = Layout::new(Rect::new(0, 0, 200, 200));
    for (k, pins) in nets.into_iter().enumerate() {
        let n = layout.add_net(format!("n{k}"), NetClass::Signal);
        for p in pins {
            layout.add_pin(n, None, p, Layer::Metal2);
        }
    }
    for r in obstacles {
        layout.add_obstacle(Obstacle::new(r, LayerSet::level_b()));
    }
    layout
}

/// Every successfully routed design validates: connected, no shorts,
/// obstacles respected.
#[test]
fn routed_designs_validate() {
    let mut rng = Rng::seed_from_u64(0x1b01);
    for _ in 0..CASES {
        let net_count = rng.gen_range(1usize..6);
        let raw: Vec<Vec<Point>> = (0..net_count)
            .map(|_| {
                let pins = rng.gen_range(2usize..5);
                (0..pins).map(|_| grid_point(&mut rng)).collect()
            })
            .collect();
        let ob_x = rng.gen_range(0i64..15);
        let ob_y = rng.gen_range(0i64..15);
        // Deduplicate pins across nets (terminal cells are exclusive).
        let mut seen = std::collections::HashSet::new();
        let mut nets: Vec<Vec<Point>> = Vec::new();
        for pins in raw {
            let uniq: Vec<Point> = pins.into_iter().filter(|p| seen.insert(*p)).collect();
            if uniq.len() >= 2 {
                nets.push(uniq);
            }
        }
        if nets.is_empty() {
            continue;
        }
        // An obstacle placed off-grid-corner so it can't seal terminals
        // (strict-interior blocking; terminals sit on track crossings).
        let ob = Rect::new(ob_x * 10 + 5, ob_y * 10 + 5, ob_x * 10 + 35, ob_y * 10 + 35);
        let layout = layout_with(nets, vec![ob]);
        let ids: Vec<_> = layout.net_ids().collect();
        let mut router = LevelBRouter::new(&layout, &ids, LevelBConfig::default()).expect("router");
        let res = router.route_all().expect("route_all");
        // Failures are allowed (terminals may be unlucky), but whatever
        // routed must be perfectly valid.
        let mut clean = res.design.clone();
        clean.failed.clear();
        let errors = validate_routed_design(&layout, &clean);
        assert!(errors.is_empty(), "{errors:?}");
    }
}

/// On an empty grid the MBFS needs at most one corner between any
/// two terminals (zero when aligned) — min-corner optimality in the
/// trivial case.
#[test]
fn empty_grid_needs_at_most_one_corner() {
    let mut rng = Rng::seed_from_u64(0x1b02);
    for _ in 0..CASES {
        let (a, b) = (grid_point(&mut rng), grid_point(&mut rng));
        if a == b {
            continue;
        }
        let grid = GridModel::new(
            Rect::new(0, 0, 200, 200),
            TrackSet::from_pitch(overcell_router::geom::Interval::new(0, 200), 10),
            TrackSet::from_pitch(overcell_router::geom::Interval::new(0, 200), 10),
        );
        let tig = Tig::new(&grid);
        let w = SearchWindow::full(&tig);
        let ai = grid.snap(a).expect("grid");
        let bi = grid.snap(b).expect("grid");
        let out = search_min_corner_paths(&tig, 0, ai, bi, &w);
        let aligned = a.x == b.x || a.y == b.y;
        assert_eq!(out.corners, Some(usize::from(!aligned)));
    }
}

/// When the MBFS finds a path on an obstructed grid, its corner
/// count equals the minimum plane-change count found by the maze
/// router with a dominant via cost (the maze is complete, so it
/// certifies the minimum).
#[test]
fn mbfs_corner_count_is_minimal_when_it_succeeds() {
    let mut rng = Rng::seed_from_u64(0x1b03);
    for _ in 0..CASES {
        let (a, b) = (grid_point(&mut rng), grid_point(&mut rng));
        if a == b {
            continue;
        }
        let ox = rng.gen_range(0i64..16);
        let oy = rng.gen_range(0i64..16);
        let ow = rng.gen_range(1i64..5);
        let oh = rng.gen_range(1i64..5);
        let mut grid = GridModel::new(
            Rect::new(0, 0, 200, 200),
            TrackSet::from_pitch(overcell_router::geom::Interval::new(0, 200), 10),
            TrackSet::from_pitch(overcell_router::geom::Interval::new(0, 200), 10),
        );
        let ob = Rect::new(
            ox * 10 - 5,
            oy * 10 - 5,
            (ox + ow) * 10 + 5,
            (oy + oh) * 10 + 5,
        );
        for dir in [
            overcell_router::geom::Dir::Horizontal,
            overcell_router::geom::Dir::Vertical,
        ] {
            grid.block_rect(&ob, dir);
        }
        let Some(ai) = grid.snap(a) else { continue };
        let Some(bi) = grid.snap(b) else { continue };
        let tig = Tig::new(&grid);
        // Terminals inside the obstacle are unroutable; skip.
        if !(tig.edge_usable(0, ai.0, ai.1) && tig.edge_usable(0, bi.0, bi.1)) {
            continue;
        }
        let w = SearchWindow::full(&tig);
        let out = search_min_corner_paths(&tig, 0, ai, bi, &w);
        let mut maze_grid = grid.clone();
        let maze = route_maze(
            &mut maze_grid,
            0,
            a,
            b,
            MazeOptions {
                via_cost: 100_000,
                astar: false,
            },
        );
        match (out.corners, maze) {
            (Some(c), Ok(path)) => {
                assert_eq!(
                    c,
                    path.route.vias.len(),
                    "MBFS corners {} vs certified minimum {}",
                    c,
                    path.route.vias.len()
                );
            }
            (Some(_), Err(_)) => panic!("MBFS found a path the maze missed"),
            // MBFS may fail where the maze succeeds (incompleteness) —
            // that is what the maze fallback is for.
            (None, _) => {}
        }
    }
}

/// The routed Steiner tree never exceeds the terminal-only MST on an
/// empty grid.
#[test]
fn steiner_never_exceeds_terminal_mst() {
    let mut rng = Rng::seed_from_u64(0x1b04);
    for _ in 0..CASES {
        let count = rng.gen_range(3usize..7);
        let mut pins: Vec<Point> = (0..count).map(|_| grid_point(&mut rng)).collect();
        pins.sort();
        pins.dedup();
        if pins.len() < 3 {
            continue;
        }
        let layout = layout_with(vec![pins.clone()], vec![]);
        let ids: Vec<_> = layout.net_ids().collect();
        let mut router = LevelBRouter::new(&layout, &ids, LevelBConfig::default()).expect("router");
        let res = router.route_all().expect("route_all");
        if !res.design.failed.is_empty() {
            continue;
        }
        let wl = res.design.route(ids[0]).expect("routed").wire_length();
        let mst = rectilinear_mst_length(&pins);
        assert!(wl <= mst, "steiner {wl} exceeds terminal MST {mst}");
    }
}
