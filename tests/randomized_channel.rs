//! Randomized tests on the channel routers: for random channel
//! problems, the emitted geometry must connect every pin, never short,
//! and use at least `density` tracks. Driven by the in-tree
//! deterministic PRNG so every failure reproduces exactly.

use overcell_router::channel::{
    emit_channel, emit_three_layer, route_channel_robust, route_greedy, route_three_layer,
    ChannelFrame, ChannelProblem, GreedyOptions, LeftEdgeOptions,
};
use overcell_router::gen::rng::Rng;
use overcell_router::geom::{Coord, Layer, Point, Rect};
use overcell_router::netlist::{validate_routed_design, Layout, NetClass, NetId, RoutedDesign};
use std::collections::BTreeMap;

const CASES: usize = 64;

/// Random well-formed channel problem: `width` columns, nets with ≥ 2
/// pins.
fn random_problem(rng: &mut Rng, width: usize) -> ChannelProblem {
    let mut top: Vec<u32> = (0..width).map(|_| rng.gen_range(0u32..8)).collect();
    let mut bottom: Vec<u32> = (0..width).map(|_| rng.gen_range(0u32..8)).collect();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &n in top.iter().chain(bottom.iter()) {
        if n != 0 {
            *counts.entry(n).or_insert(0) += 1;
        }
    }
    for row in [&mut top, &mut bottom] {
        for v in row.iter_mut() {
            if *v != 0 && counts[v] < 2 {
                *v = 0;
            }
        }
    }
    ChannelProblem::from_ids(&top, &bottom)
}

/// Emits a plan into a frame and validates full electrical correctness
/// against a synthetic layout with pins at the channel edges.
fn emit_and_validate(
    problem: &ChannelProblem,
    plan: &overcell_router::channel::ChannelPlan,
    width: usize,
) {
    let pitch: Coord = 10;
    let y_top = ChannelFrame::required_height(plan.tracks_used.max(1), pitch);
    let frame = ChannelFrame {
        col_x: (0..width).map(|c| c as Coord * pitch).collect(),
        y_bottom: 0,
        y_top,
        pitch,
        h_layer: Layer::Metal1,
        v_layer: Layer::Metal2,
    };
    let routes = emit_channel(plan, &frame).expect("plan emits");
    let die = Rect::new(-pitch, 0, width as Coord * pitch, y_top);
    let mut layout = Layout::new(die);
    let mut map: BTreeMap<NetId, NetId> = BTreeMap::new();
    for n in problem.nets() {
        let id = layout.add_net(format!("n{}", n.0), NetClass::Signal);
        map.insert(n, id);
    }
    for c in 0..problem.width() {
        if let Some(n) = problem.top(c) {
            layout.add_pin(
                map[&n],
                None,
                Point::new(c as Coord * pitch, y_top),
                Layer::Metal2,
            );
        }
        if let Some(n) = problem.bottom(c) {
            layout.add_pin(
                map[&n],
                None,
                Point::new(c as Coord * pitch, 0),
                Layer::Metal2,
            );
        }
    }
    let mut design = RoutedDesign::new(die, layout.nets.len());
    for (n, r) in routes {
        design.set_route(map[&n], r);
    }
    let errors = validate_routed_design(&layout, &design);
    assert!(errors.is_empty(), "{errors:?}\nplan: {plan}");
}

#[test]
fn robust_router_output_is_electrically_correct() {
    let mut rng = Rng::seed_from_u64(0xc401);
    for _ in 0..CASES {
        let problem = random_problem(&mut rng, 24);
        if problem.nets().is_empty() {
            continue;
        }
        match route_channel_robust(&problem, LeftEdgeOptions::default()) {
            Ok(plan) => {
                assert!(
                    plan.tracks_used >= problem.density()
                        || plan.tracks_used + 1 >= problem.density(),
                    "tracks {} below density {}",
                    plan.tracks_used,
                    problem.density()
                );
                emit_and_validate(&problem, &plan, problem.width());
            }
            Err(e) => {
                // Robust routing may still fail on pathological cycles;
                // the error must be a structured channel error, never a
                // bad plan (bad plans are caught by the audit inside).
                let _ = e;
            }
        }
    }
}

#[test]
fn greedy_router_output_is_electrically_correct() {
    let mut rng = Rng::seed_from_u64(0xc402);
    for _ in 0..CASES {
        let problem = random_problem(&mut rng, 20);
        if problem.nets().is_empty() {
            continue;
        }
        if let Ok(res) = route_greedy(&problem, GreedyOptions::default()) {
            assert!(res.plan.tracks_used >= problem.density());
            emit_and_validate(&problem, &res.plan, res.width.max(problem.width()));
        }
    }
}

#[test]
fn three_layer_output_is_electrically_correct() {
    let mut rng = Rng::seed_from_u64(0xc403);
    for _ in 0..CASES {
        let problem = random_problem(&mut rng, 20);
        if problem.nets().is_empty() {
            continue;
        }
        if let Ok(plan) = route_three_layer(&problem, LeftEdgeOptions::default()) {
            // Track count at least the two-lane lower bound.
            assert!(plan.tracks_used >= problem.density().div_ceil(2));
            // Emit and fully validate like the two-layer case.
            let pitch: Coord = 10;
            let width = problem.width();
            let y_top = ChannelFrame::required_height(plan.tracks_used.max(1), pitch);
            let frame = ChannelFrame {
                col_x: (0..width).map(|c| c as Coord * pitch).collect(),
                y_bottom: 0,
                y_top,
                pitch,
                h_layer: Layer::Metal1,
                v_layer: Layer::Metal2,
            };
            let routes = emit_three_layer(&plan, &frame).expect("emits");
            let die = Rect::new(-pitch, 0, width as Coord * pitch, y_top);
            let mut layout = Layout::new(die);
            let mut map: BTreeMap<NetId, NetId> = BTreeMap::new();
            for n in problem.nets() {
                map.insert(n, layout.add_net(format!("n{}", n.0), NetClass::Signal));
            }
            for c in 0..width {
                if let Some(n) = problem.top(c) {
                    layout.add_pin(
                        map[&n],
                        None,
                        Point::new(c as Coord * pitch, y_top),
                        Layer::Metal2,
                    );
                }
                if let Some(n) = problem.bottom(c) {
                    layout.add_pin(
                        map[&n],
                        None,
                        Point::new(c as Coord * pitch, 0),
                        Layer::Metal2,
                    );
                }
            }
            let mut design = RoutedDesign::new(die, layout.nets.len());
            for (n, r) in routes {
                design.set_route(map[&n], r);
            }
            let errors = validate_routed_design(&layout, &design);
            assert!(errors.is_empty(), "{errors:?}");
        }
    }
}

#[test]
fn density_never_exceeds_net_count() {
    let mut rng = Rng::seed_from_u64(0xc404);
    for _ in 0..CASES {
        let problem = random_problem(&mut rng, 16);
        assert!(problem.density() <= problem.nets().len());
    }
}

#[test]
fn zones_max_clique_equals_density() {
    let mut rng = Rng::seed_from_u64(0xc405);
    for _ in 0..CASES {
        let problem = random_problem(&mut rng, 16);
        let zones = overcell_router::channel::density::zones(&problem);
        let max_clique = zones.iter().map(|z| z.nets.len()).max().unwrap_or(0);
        assert_eq!(max_clique, problem.density());
    }
}
