//! Crash-safety contract of `ocr serve` (DESIGN.md §15): a SIGKILLed
//! daemon restarted on the same `--journal` and `--out` produces
//! byte-identical answers to one that was never interrupted.
//!
//! * Kill sites cover every durability boundary — after the fsynced
//!   accept, at the top of a round, after the slices ran but before
//!   settlement, between a job's answer files and its terminal journal
//!   record, and before the service-level files — at `OCR_THREADS=1`
//!   and the default pool width.
//! * A torn or checksum-corrupted journal tail is dropped with a typed
//!   warning, never a panic, and never loses an accepted job.
//! * Transient write failures at the `journal.append`, `ckpt.write`
//!   and `answers.write` fault sites heal through the bounded retry
//!   wrapper without changing a single answered byte.
//! * A journaled `done` whose answer files are missing re-runs instead
//!   of being trusted.
//!
//! The comparisons cover `results.txt` and the per-job `status` and
//! `routes.txt` bytes. `stats.json` carries wall-clock timings and
//! `serve.log` carries recovery lines, so neither is byte-compared.

use overcell_router::exec::with_threads;
use overcell_router::fault;
use overcell_router::gen::random::small_random;
use overcell_router::gen::GeneratedChip;
use overcell_router::io::job::JobSpec;
use overcell_router::io::write_chip;
use overcell_router::serve::{load_job, run_jobs, JobInput, JobStatus, ServeConfig, ServeReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const JOBS: [(&str, u64); 3] = [("alpha", 42), ("beta", 5), ("gamma", 7)];

fn chip(seed: u64) -> GeneratedChip {
    small_random(6, 2, 3, 10, seed)
}

/// A collision-free scratch directory.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ocr-serve-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the test chips into `dir` and returns the job batch loaded
/// against it (so `base` is journaled and a restart can reload chips).
fn spool_batch(dir: &Path) -> Vec<JobInput> {
    JOBS.iter()
        .map(|&(name, seed)| {
            let c = chip(seed);
            let file = format!("{name}.ocr");
            std::fs::write(dir.join(&file), write_chip(&c.layout, &c.placement)).expect("chip");
            load_job(JobSpec::new(name, file), dir)
        })
        .collect()
}

/// A journaled service config over `root`: chips and results under
/// `root/out`, the write-ahead journal under `root/wal`. The tight
/// quantum forces several preemptions, so checkpoints and `preempt`
/// records are really exercised.
fn config(root: &Path) -> ServeConfig {
    ServeConfig {
        out: Some(root.join("out")),
        quantum: 8,
        max_concurrent: 2,
        journal: Some(root.join("wal")),
        ..ServeConfig::default()
    }
}

/// The bytes a recovery run must reproduce: `results.txt` plus every
/// job's `status` and `routes.txt`.
fn answer_bytes(root: &Path) -> Vec<(String, String)> {
    let out = root.join("out");
    let mut files = vec!["results.txt".to_string()];
    for (name, _) in JOBS {
        files.push(format!("{name}/status"));
        files.push(format!("{name}/routes.txt"));
    }
    files
        .into_iter()
        .map(|f| {
            let text = std::fs::read_to_string(out.join(&f))
                .unwrap_or_else(|e| panic!("{}: {e}", out.join(&f).display()));
            (f, text)
        })
        .collect()
}

fn assert_all_done(report: &ServeReport) {
    assert_eq!(report.jobs.len(), JOBS.len(), "{}", report.log.join("\n"));
    for job in &report.jobs {
        assert_eq!(job.status, JobStatus::Done, "{}: {}", job.name, job.detail);
    }
}

/// The uninterrupted reference: same jobs, same budgets, no faults.
fn reference(tag: &str) -> (PathBuf, Vec<(String, String)>) {
    let root = scratch(tag);
    let jobs = spool_batch(&root);
    let report = run_jobs(jobs, &config(&root)).expect("reference serves");
    assert_all_done(&report);
    assert!(
        report.jobs.iter().any(|j| j.preempts > 0),
        "the tight quantum must preempt at least one job:\n{}",
        report.log.join("\n")
    );
    let bytes = answer_bytes(&root);
    (root, bytes)
}

/// Kills the service at `site`/`hit` (an injected panic stands in for
/// SIGKILL: no destructor runs file cleanup, and `catch_unwind`
/// abandons the engine mid-flight exactly where the kill landed), then
/// restarts it on the same journal and asserts the recovered answers
/// are byte-identical to the uninterrupted reference.
fn kill_and_recover(tag: &str, site: &str, hit: u64, expected: &[(String, String)]) {
    let root = scratch(tag);
    let jobs = spool_batch(&root);
    let cfg = config(&root);
    let plan = fault::plan(1).kill_at(site, hit).build();
    let killed = fault::with_plan(&plan, || {
        catch_unwind(AssertUnwindSafe(|| run_jobs(jobs, &cfg)))
    });
    assert!(
        killed.is_err(),
        "{site} hit {hit}: the kill site must actually fire"
    );
    // The daemon is dead; restart it on the same journal. The intake is
    // closed, so everything it answers comes from recovery.
    let report = run_jobs(Vec::new(), &cfg).expect("restarted service serves");
    assert_all_done(&report);
    let recovered = answer_bytes(&root);
    for ((file, bytes), (ref_file, ref_bytes)) in recovered.iter().zip(expected) {
        assert_eq!(file, ref_file);
        assert_eq!(
            bytes, ref_bytes,
            "{site} hit {hit}: `{file}` must match the uninterrupted run byte for byte"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Every kill site, at its first firing and (where the service lives
/// long enough) a later one, at both pool widths.
#[test]
fn killed_and_restarted_service_answers_byte_identically() {
    let scenarios: &[(&str, u64)] = &[
        ("serve.kill.accept", 0),
        ("serve.kill.round", 0),
        ("serve.kill.round", 1),
        ("serve.kill.settle", 0),
        ("serve.kill.settle", 1),
        ("serve.kill.finish", 0),
        ("serve.kill.finish", 1),
        ("serve.kill.final", 0),
    ];
    let (ref_root, expected) = reference("ref");
    for (k, &(site, hit)) in scenarios.iter().enumerate() {
        kill_and_recover(&format!("seq-{k}"), site, hit, &expected);
        with_threads(1, || {
            kill_and_recover(&format!("one-{k}"), site, hit, &expected);
        });
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// A second kill *during recovery* (after the first restart already
/// replayed the journal) still converges to the reference bytes.
#[test]
fn a_crash_during_recovery_is_itself_recoverable() {
    let (ref_root, expected) = reference("ref2");
    let root = scratch("rekill");
    let jobs = spool_batch(&root);
    let cfg = config(&root);
    let plan = fault::plan(1).kill_at("serve.kill.settle", 0).build();
    let first = fault::with_plan(&plan, || {
        catch_unwind(AssertUnwindSafe(|| run_jobs(jobs, &cfg)))
    });
    assert!(first.is_err());
    let plan = fault::plan(2).kill_at("serve.kill.finish", 0).build();
    let second = fault::with_plan(&plan, || {
        catch_unwind(AssertUnwindSafe(|| run_jobs(Vec::new(), &cfg)))
    });
    assert!(second.is_err(), "the second kill must fire too");
    let report = run_jobs(Vec::new(), &cfg).expect("third start serves");
    assert_all_done(&report);
    let recovered = answer_bytes(&root);
    for ((file, bytes), (_, ref_bytes)) in recovered.iter().zip(&expected) {
        assert_eq!(bytes, ref_bytes, "`{file}` after two crashes");
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// Tearing the journal's final record at any byte boundary is absorbed:
/// the restart logs a typed warning, re-runs what the tail lost, and
/// still reproduces the reference bytes.
#[test]
fn torn_journal_tail_recovers_with_a_warning_and_identical_bytes() {
    let (ref_root, expected) = reference("ref3");
    let journal = ref_root.join("wal").join("serve.journal");
    let full = std::fs::read(&journal).expect("journal bytes");
    let last_line = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .expect("more than one record")
        + 1;
    // Every truncation point inside the final record, including the
    // clean boundary just before it.
    for cut in last_line..full.len() {
        let root = scratch(&format!("torn-{cut}"));
        let out_src = ref_root.join("out");
        copy_tree(&out_src, &root.join("out"));
        std::fs::create_dir_all(root.join("wal")).expect("wal dir");
        std::fs::write(root.join("wal").join("serve.journal"), &full[..cut]).expect("torn");
        spool_batch(&root); // the chips the recovered jobs reload
        let report = run_jobs(Vec::new(), &config(&root)).expect("torn-tail restart serves");
        assert_all_done(&report);
        if cut > last_line {
            assert!(
                report.log.iter().any(|l| l.contains("journal")),
                "cut {cut}: a torn record must leave a typed warning:\n{}",
                report.log.join("\n")
            );
        }
        let recovered = answer_bytes(&root);
        for ((file, bytes), (_, ref_bytes)) in recovered.iter().zip(&expected) {
            assert_eq!(bytes, ref_bytes, "cut {cut}: `{file}`");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// A checksum-corrupted record mid-journal drops the damaged tail with
/// a warning — never a panic — and every job still gets answered.
#[test]
fn corrupted_journal_record_warns_and_still_answers_every_job() {
    let (ref_root, _) = reference("ref4");
    let journal = ref_root.join("wal").join("serve.journal");
    let full = std::fs::read(&journal).expect("journal bytes");
    let root = scratch("corrupt");
    copy_tree(&ref_root.join("out"), &root.join("out"));
    std::fs::create_dir_all(root.join("wal")).expect("wal dir");
    let mut bytes = full.clone();
    // Flip a payload byte in the middle of the journal: the replay
    // keeps the valid prefix and drops everything after the damage.
    let mid = bytes.len() / 2;
    let target = (mid..bytes.len())
        .find(|&i| bytes[i].is_ascii_alphanumeric())
        .expect("payload byte");
    bytes[target] ^= 0x01;
    std::fs::write(root.join("wal").join("serve.journal"), &bytes).expect("corrupt journal");
    spool_batch(&root);
    let report = run_jobs(Vec::new(), &config(&root)).expect("corrupted journal never panics");
    assert!(
        report.log.iter().any(|l| l.contains("journal")),
        "corruption must be surfaced as a warning:\n{}",
        report.log.join("\n")
    );
    for job in &report.jobs {
        assert!(
            job.status == JobStatus::Done || job.status == JobStatus::Rejected,
            "{}: {} ({})",
            job.name,
            job.status,
            job.detail
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// A journaled `done` whose `routes.txt` disappeared is not trusted:
/// the restart re-runs the job and restores the identical answer.
#[test]
fn journaled_done_with_missing_answers_is_rerun_not_trusted() {
    let (root, expected) = reference("ref5");
    let victim = root.join("out").join("alpha").join("routes.txt");
    std::fs::remove_file(&victim).expect("remove answer");
    let report = run_jobs(Vec::new(), &config(&root)).expect("restart serves");
    assert_all_done(&report);
    assert!(
        report
            .log
            .iter()
            .any(|l| l.contains("alpha") && l.contains("re-running")),
        "the untrusted terminal must be logged:\n{}",
        report.log.join("\n")
    );
    assert!(victim.exists(), "the re-run restores the answer file");
    let recovered = answer_bytes(&root);
    for ((file, bytes), (_, ref_bytes)) in recovered.iter().zip(&expected) {
        assert_eq!(bytes, ref_bytes, "`{file}` after the re-run");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Transient write failures at every durable-write fault site heal
/// through the bounded retry wrapper: the service completes, counts
/// its retries, and answers the same bytes.
#[test]
fn transient_write_faults_heal_through_retries() {
    let (ref_root, expected) = reference("ref6");
    for (k, &site) in ["journal.append", "ckpt.write", "answers.write"]
        .iter()
        .enumerate()
    {
        let root = scratch(&format!("retry-{k}"));
        let jobs = spool_batch(&root);
        let collector = overcell_router::obs::Collector::new();
        let plan = fault::plan(3).fire_at(site, 1.0, 2).build();
        let report = overcell_router::obs::with_collector(&collector, || {
            fault::with_plan(&plan, || run_jobs(jobs, &config(&root)))
        })
        .unwrap_or_else(|e| panic!("{site}: transient faults must heal: {e}"));
        assert_all_done(&report);
        // Service-level retries (journal, answer files) land on the
        // ambient collector. Checkpoint retries happen inside a slice's
        // own telemetry scope and are asserted by the flow-level test
        // below; here the healed byte-identical answers are the proof.
        if site != "ckpt.write" {
            let retries = collector.snapshot().counter("io.retries").unwrap_or(0);
            assert!(retries >= 2, "{site}: retries must be counted ({retries})");
        }
        let recovered = answer_bytes(&root);
        for ((file, bytes), (_, ref_bytes)) in recovered.iter().zip(&expected) {
            assert_eq!(bytes, ref_bytes, "{site}: `{file}`");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&ref_root);
}

/// The recovery path reports itself through the obs counters the CI
/// smoke asserts on: replayed records and resumed jobs.
#[test]
fn recovery_counters_are_observable() {
    let root = scratch("counters");
    let jobs = spool_batch(&root);
    let cfg = config(&root);
    let plan = fault::plan(1).kill_at("serve.kill.settle", 1).build();
    let killed = fault::with_plan(&plan, || {
        catch_unwind(AssertUnwindSafe(|| run_jobs(jobs, &cfg)))
    });
    assert!(killed.is_err());
    let collector = overcell_router::obs::Collector::new();
    let report = overcell_router::obs::with_collector(&collector, || run_jobs(Vec::new(), &cfg))
        .expect("restart serves");
    assert_all_done(&report);
    let snapshot = collector.snapshot();
    assert!(
        snapshot.counter("journal.replayed").unwrap_or(0) > 0,
        "the restart replayed journal records"
    );
    assert!(
        snapshot.counter("recover.jobs_resumed").unwrap_or(0) > 0,
        "at least one job was resumed by recovery"
    );
    assert!(
        snapshot.counter("journal.append").unwrap_or(0) > 0,
        "the restart appended its own records"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Transient checkpoint-write failures inside a controlled flow heal
/// through the retry wrapper, count into the run's own telemetry, and
/// leave the routed result untouched.
#[test]
fn checkpoint_write_retries_are_counted_in_flow_telemetry() {
    use overcell_router::core::{CheckpointSpec, FlowKind, FlowOptions, RunSession};
    use overcell_router::exec::RunControl;
    use overcell_router::io::ckpt::fnv1a_64;

    let c = chip(42);
    let dir = scratch("ckpt-retry");
    let session = |path: PathBuf| RunSession {
        control: RunControl::new(),
        checkpoint: Some(CheckpointSpec {
            path,
            every: 1,
            flow: "overcell".into(),
            chip_hash: fnv1a_64(&write_chip(&c.layout, &c.placement)),
        }),
        resume: None,
    };
    let plan = fault::plan(3).fire_at("ckpt.write", 1.0, 2).build();
    let faulted = fault::with_plan(&plan, || {
        FlowKind::OverCell
            .build_with(FlowOptions::new().telemetry(true))
            .run_controlled(&c.layout, &c.placement, &session(dir.join("a.ckpt")))
    })
    .expect("transient checkpoint faults must heal");
    let retries = faulted
        .telemetry
        .as_ref()
        .and_then(|t| t.counter("io.retries"))
        .unwrap_or(0);
    assert!(retries >= 2, "retries must be counted ({retries})");
    let clean = FlowKind::OverCell
        .build_with(FlowOptions::new())
        .run_controlled(&c.layout, &c.placement, &session(dir.join("b.ckpt")))
        .expect("clean run");
    assert_eq!(
        overcell_router::io::write_routes(&faulted.layout, &faulted.design),
        overcell_router::io::write_routes(&clean.layout, &clean.design),
        "healed writes must not change the routed result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Minimal recursive copy for staging reference output trees.
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy dir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}
