//! End-to-end integration tests: complete flows on generated chips,
//! validated for electrical correctness, plus cross-flow invariants.

use overcell_router::core::{
    run_analytic_four_layer_estimate, FlowKind, FlowOptions, OverCellFlow, PartitionStrategy,
    ThreeLayerChannelFlow, TwoLayerChannelFlow,
};
use overcell_router::gen::random::small_random;
use overcell_router::gen::suite;
use overcell_router::netlist::validate_routed_design;

#[test]
fn every_flow_on_many_seeds() {
    for kind in FlowKind::ALL {
        for seed in 0..6 {
            let chip = small_random(6, 2, 3, 12, seed);
            let res = kind
                .build()
                .run(&chip.layout, &chip.placement)
                .unwrap_or_else(|e| panic!("{kind} seed {seed}: {e}"));
            if kind == FlowKind::OverCell {
                assert!(res.design.failed.is_empty(), "seed {seed}: failures");
            }
            let errors = validate_routed_design(&res.layout, &res.design);
            assert!(errors.is_empty(), "{kind} seed {seed}: {errors:?}");
        }
    }
}

#[test]
fn three_layer_flow_between_two_and_four_layer_tracks() {
    let chip = small_random(8, 2, 4, 16, 3);
    let two = TwoLayerChannelFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("two-layer");
    let three = ThreeLayerChannelFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("three-layer");
    // Per-channel, two-lane tracks never exceed single-lane tracks.
    for (t3, t2) in three.channel_tracks.iter().zip(&two.channel_tracks) {
        assert!(t3 <= t2, "3-layer {t3} vs 2-layer {t2} tracks");
    }
}

#[test]
fn over_cell_never_larger_than_two_layer_baseline() {
    for seed in [1, 3, 5, 8] {
        let chip = small_random(8, 2, 4, 16, seed);
        let over = OverCellFlow::default()
            .run(&chip.layout, &chip.placement)
            .expect("over-cell");
        let two = TwoLayerChannelFlow::default()
            .run(&chip.layout, &chip.placement)
            .expect("two-layer");
        assert!(
            over.metrics.layout_area <= two.metrics.layout_area,
            "seed {seed}: over-cell {} vs baseline {}",
            over.metrics.layout_area,
            two.metrics.layout_area
        );
    }
}

#[test]
fn all_b_partition_minimizes_channels() {
    let chip = small_random(6, 2, 3, 12, 2);
    let default = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("default");
    let all_b = OverCellFlow {
        partition: PartitionStrategy::AllB,
        ..OverCellFlow::default()
    }
    .run(&chip.layout, &chip.placement)
    .expect("all-B");
    assert!(all_b.channel_tracks.iter().all(|&t| t == 0));
    assert!(all_b.metrics.layout_area <= default.metrics.layout_area);
    assert!(validate_routed_design(&all_b.layout, &all_b.design).is_empty());
}

#[test]
fn analytic_estimate_is_positive_and_bounded_by_real_two_layer_height() {
    let chip = small_random(6, 2, 3, 12, 4);
    let two = TwoLayerChannelFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("two-layer");
    let est = run_analytic_four_layer_estimate(&two, &chip.layout);
    assert!(est > 0);
}

#[test]
fn flows_are_deterministic() {
    let chip = suite::ami33_like();
    let a = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("run 1");
    let b = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("run 2");
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.layout.die, b.layout.die);
}

#[test]
fn suite_chips_route_fully_with_all_flows() {
    // The headline reproduction: every suite chip routes 100% in every
    // flow and validates cleanly. (Table 2/3 shapes are asserted in
    // `paper_reproduction.rs`.)
    for chip in suite::all() {
        let over = OverCellFlow::default()
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{}: {e}", chip.spec.name));
        assert!(over.design.failed.is_empty(), "{}", chip.spec.name);
        assert!(
            validate_routed_design(&over.layout, &over.design).is_empty(),
            "{}",
            chip.spec.name
        );
    }
}

#[test]
fn suite_chips_pass_the_independent_oracle_in_all_flows() {
    // The ocr-verify oracle re-derives connectivity and design-rule
    // legality from the emitted geometry alone; every flow on every
    // suite chip must come back clean. The oracle is attached via the
    // shared FlowOptions, the same path the `ocr verify --flow` CLI uses.
    for chip in suite::all() {
        let name = &chip.spec.name;
        for kind in [FlowKind::OverCell, FlowKind::Channel2, FlowKind::Channel4] {
            let res = kind
                .build_with(FlowOptions::verified())
                .run(&chip.layout, &chip.placement)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = res.verify.expect("verify requested");
            assert!(report.is_clean(), "{name} {kind}:\n{report}");
            assert_eq!(report.open_nets(), 0, "{name} {kind}");
        }
    }
}

#[test]
fn level_a_and_level_b_nets_partition_the_netlist() {
    let chip = small_random(6, 2, 3, 12, 9);
    let res = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    let mut all: Vec<u32> = res
        .level_a_nets
        .iter()
        .chain(res.level_b_nets.iter())
        .map(|n| n.0)
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), res.level_a_nets.len() + res.level_b_nets.len());
    assert_eq!(all.len(), chip.layout.nets.len());
}

#[test]
fn area_budget_partitioning_is_monotone() {
    let chip = small_random(6, 2, 3, 12, 6);
    let mut last_area = i128::MAX;
    for budget in [usize::MAX, 4, 0] {
        let res = OverCellFlow {
            partition: PartitionStrategy::AreaBudget {
                max_tracks_per_channel: budget,
            },
            ..OverCellFlow::default()
        }
        .run(&chip.layout, &chip.placement)
        .unwrap_or_else(|e| panic!("budget {budget}: {e}"));
        assert!(res.design.failed.is_empty());
        assert!(validate_routed_design(&res.layout, &res.design).is_empty());
        assert!(
            res.metrics.layout_area <= last_area,
            "budget {budget}: area {} grew past {}",
            res.metrics.layout_area,
            last_area
        );
        last_area = res.metrics.layout_area;
    }
}
