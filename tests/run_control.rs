//! Run-control contract: deterministic step budgets, cooperative
//! cancellation and checkpoint/resume for every flow.
//!
//! The guarantees pinned here are the ones DESIGN.md §10 documents:
//!
//! * A step budget trips at the same point regardless of the worker
//!   count, and a run interrupted by it and resumed from its
//!   `ocr-ckpt-v1` checkpoint produces **byte-identical** routes to a
//!   run that was never interrupted.
//! * A tripped run is exhaustive: every net the flow did not finish is
//!   declared failed with a typed reason (`BudgetExceeded` /
//!   `Cancelled`), and the wiring it did commit passes the independent
//!   oracle.

use std::path::PathBuf;

use overcell_router::core::{
    resume_from_doc, CheckpointSpec, DegradeReason, FlowKind, FlowOptions, FlowResult, RunSession,
};
use overcell_router::exec::{with_threads, RunControl};
use overcell_router::gen::random::small_random;
use overcell_router::gen::GeneratedChip;
use overcell_router::io::ckpt::{fnv1a_64, parse_checkpoint};
use overcell_router::io::{write_chip, write_routes};
use overcell_router::netlist::NetId;

fn test_chip() -> GeneratedChip {
    small_random(6, 2, 3, 10, 42)
}

/// A collision-free scratch path for one checkpoint file.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ocr-run-control-{}-{tag}.ckpt", std::process::id()))
}

fn run_controlled(
    kind: FlowKind,
    options: FlowOptions,
    chip: &GeneratedChip,
    session: &RunSession,
    threads: usize,
) -> FlowResult {
    with_threads(threads, || {
        kind.build_with(options)
            .run_controlled(&chip.layout, &chip.placement, session)
            .unwrap_or_else(|e| panic!("{kind}: {e}"))
    })
}

/// Every net must be accounted for: routed, or failed with a reason in
/// the degradation report. A trip must never silently drop a net.
fn assert_exhaustive(kind: FlowKind, chip: &GeneratedChip, result: &FlowResult) {
    let degradation = result
        .degradation
        .as_ref()
        .unwrap_or_else(|| panic!("{kind}: tripped run must carry a degradation report"));
    let mut failed: Vec<NetId> = result.design.failed.clone();
    failed.sort();
    let mut reported: Vec<NetId> = degradation.nets.iter().map(|d| d.net).collect();
    reported.sort();
    reported.dedup();
    assert_eq!(
        failed, reported,
        "{kind}: failed nets and degradation report disagree"
    );
    for net in chip.layout.net_ids() {
        assert!(
            result.design.route(net).is_some() || failed.binary_search(&net).is_ok(),
            "{kind}: {net} neither routed nor declared failed"
        );
    }
}

#[test]
fn budget_interrupt_and_resume_is_byte_identical() {
    let chip = test_chip();
    let chip_hash = fnv1a_64(&write_chip(&chip.layout, &chip.placement));
    for kind in FlowKind::ALL {
        for threads in [1usize, 4] {
            let full = with_threads(threads, || {
                kind.build_with(FlowOptions::default())
                    .run(&chip.layout, &chip.placement)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"))
            });
            let full_text = write_routes(&full.layout, &full.design);
            for budget in [0u64, 3, 9, 27] {
                let path = scratch(&format!("{kind}-{threads}-{budget}"));
                let session = RunSession {
                    control: RunControl::new().with_step_budget(budget),
                    checkpoint: Some(CheckpointSpec {
                        path: path.clone(),
                        every: 1,
                        flow: kind.name().to_string(),
                        chip_hash,
                    }),
                    resume: None,
                };
                let interrupted =
                    run_controlled(kind, FlowOptions::default(), &chip, &session, threads);
                if session.control.is_tripped() {
                    assert_exhaustive(kind, &chip, &interrupted);
                }

                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("{kind}: read {}: {e}", path.display()));
                let doc = parse_checkpoint(&chip.layout, &text)
                    .unwrap_or_else(|e| panic!("{kind}: parse checkpoint: {e}"));
                let resume =
                    resume_from_doc(doc).unwrap_or_else(|e| panic!("{kind}: resume_from_doc: {e}"));
                assert_eq!(resume.flow, kind.name(), "{kind}: checkpoint flow");
                assert_eq!(resume.chip_hash, chip_hash, "{kind}: checkpoint chip hash");

                // Resume with the budget lifted: the continuation must
                // land exactly where the uninterrupted run did.
                let steps = resume.steps;
                let resumed_session = RunSession {
                    control: RunControl::new().resumed_at(steps),
                    checkpoint: None,
                    resume: Some(resume),
                };
                let resumed = run_controlled(
                    kind,
                    FlowOptions::default(),
                    &chip,
                    &resumed_session,
                    threads,
                );
                let resumed_text = write_routes(&resumed.layout, &resumed.design);
                assert_eq!(
                    full_text, resumed_text,
                    "{kind} at {threads} thread(s), budget {budget}: \
                     interrupted+resumed diverged from the uninterrupted run"
                );
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

#[test]
fn checkpoint_text_is_thread_count_independent() {
    let chip = test_chip();
    let chip_hash = fnv1a_64(&write_chip(&chip.layout, &chip.placement));
    for kind in FlowKind::ALL {
        let run = |threads: usize| {
            let path = scratch(&format!("threads-{kind}-{threads}"));
            let session = RunSession {
                control: RunControl::new().with_step_budget(9),
                checkpoint: Some(CheckpointSpec {
                    path: path.clone(),
                    every: 1,
                    flow: kind.name().to_string(),
                    chip_hash,
                }),
                resume: None,
            };
            run_controlled(kind, FlowOptions::default(), &chip, &session, threads);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{kind}: read {}: {e}", path.display()));
            let _ = std::fs::remove_file(&path);
            text
        };
        assert_eq!(run(1), run(4), "{kind}: checkpoint text diverged");
    }
}

#[test]
fn cancelled_run_degrades_every_net_and_is_oracle_clean() {
    let chip = test_chip();
    for kind in FlowKind::ALL {
        let control = RunControl::new();
        control.cancel();
        let session = RunSession::with_control(control);
        let result = run_controlled(kind, FlowOptions::verified(), &chip, &session, 1);
        assert_exhaustive(kind, &chip, &result);
        let degradation = result.degradation.as_ref().expect("degradation attached");
        assert!(
            !degradation.nets.is_empty(),
            "{kind}: a pre-cancelled run must degrade its nets"
        );
        for d in &degradation.nets {
            assert_eq!(
                d.reason,
                DegradeReason::Cancelled,
                "{kind}: {} carries the wrong reason",
                d.net
            );
        }
        let report = result.verify.as_ref().expect("verify requested");
        assert!(report.is_clean(), "{kind}: {report}");
    }
}

#[test]
fn budget_trip_is_oracle_clean_with_typed_reasons() {
    let chip = test_chip();
    // Only Level B charges steps, so the over-cell flow is the one a
    // budget can interrupt mid-flight with real committed wiring.
    let kind = FlowKind::OverCell;
    for budget in [2u64, 6, 14] {
        let session = RunSession::with_control(RunControl::new().with_step_budget(budget));
        let result = run_controlled(kind, FlowOptions::verified(), &chip, &session, 1);
        if !session.control.is_tripped() {
            continue;
        }
        assert_exhaustive(kind, &chip, &result);
        let degradation = result.degradation.as_ref().expect("degradation attached");
        assert!(degradation.nets.iter().all(|d| matches!(
            d.reason,
            DegradeReason::BudgetExceeded | DegradeReason::Cancelled
        ) || result.design.route(d.net).is_none()));
        assert!(
            degradation
                .nets
                .iter()
                .any(|d| d.reason == DegradeReason::BudgetExceeded),
            "budget {budget}: trip must surface BudgetExceeded reasons"
        );
        let report = result.verify.as_ref().expect("verify requested");
        assert!(
            report.is_clean(),
            "budget {budget}: committed wiring must stay oracle-clean: {report}"
        );
    }
}

#[test]
fn an_expired_deadline_cancels_before_any_work() {
    let chip = test_chip();
    for kind in FlowKind::ALL {
        let control = RunControl::new().with_deadline_in(std::time::Duration::ZERO);
        let session = RunSession::with_control(control);
        let result = run_controlled(kind, FlowOptions::verified(), &chip, &session, 1);
        assert!(
            session.control.is_tripped(),
            "{kind}: a zero deadline must trip"
        );
        assert_exhaustive(kind, &chip, &result);
        let report = result.verify.as_ref().expect("verify requested");
        assert!(report.is_clean(), "{kind}: {report}");
    }
}

#[test]
fn header_only_checkpoint_resumes_as_a_full_rerun() {
    // A checkpoint written before any net committed (or by a channel
    // flow, which has no per-net commit boundary) carries only the
    // header; resuming from it must reproduce the full run exactly.
    let chip = test_chip();
    let chip_hash = fnv1a_64(&write_chip(&chip.layout, &chip.placement));
    for kind in FlowKind::ALL {
        let full = kind
            .build_with(FlowOptions::default())
            .run(&chip.layout, &chip.placement)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let full_text = write_routes(&full.layout, &full.design);

        let path = scratch(&format!("header-{kind}"));
        let control = RunControl::new();
        control.cancel();
        let session = RunSession {
            control,
            checkpoint: Some(CheckpointSpec {
                path: path.clone(),
                every: 1,
                flow: kind.name().to_string(),
                chip_hash,
            }),
            resume: None,
        };
        run_controlled(kind, FlowOptions::default(), &chip, &session, 1);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{kind}: read {}: {e}", path.display()));
        let doc = parse_checkpoint(&chip.layout, &text).expect("parse checkpoint");
        let resume = resume_from_doc(doc).expect("resume");
        assert!(resume.is_fresh(), "{kind}: pre-work checkpoint is fresh");

        let resumed_session = RunSession {
            control: RunControl::new().resumed_at(resume.steps),
            checkpoint: None,
            resume: Some(resume),
        };
        let resumed = run_controlled(kind, FlowOptions::default(), &chip, &resumed_session, 1);
        assert_eq!(
            full_text,
            write_routes(&resumed.layout, &resumed.design),
            "{kind}: header-only resume diverged from a fresh run"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn steps_accumulate_across_a_resume() {
    let chip = test_chip();
    let chip_hash = fnv1a_64(&write_chip(&chip.layout, &chip.placement));
    let kind = FlowKind::OverCell;
    let path = scratch("cumulative");
    let session = RunSession {
        control: RunControl::new().with_step_budget(5),
        checkpoint: Some(CheckpointSpec {
            path: path.clone(),
            every: 1,
            flow: kind.name().to_string(),
            chip_hash,
        }),
        resume: None,
    };
    run_controlled(kind, FlowOptions::default(), &chip, &session, 1);
    assert!(session.control.is_tripped(), "budget 5 must trip this chip");
    let at_trip = session.control.steps();
    assert!(at_trip >= 5, "the tripping charge itself must land");

    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    let _ = std::fs::remove_file(&path);
    let resume =
        resume_from_doc(parse_checkpoint(&chip.layout, &text).expect("parse")).expect("resume");
    assert_eq!(resume.steps, at_trip, "checkpoint records cumulative steps");

    // Resuming under the *same* budget trips again immediately: the
    // counter continues from the checkpoint, it does not reset.
    let same_budget = RunSession {
        control: RunControl::new()
            .with_step_budget(5)
            .resumed_at(resume.steps),
        checkpoint: None,
        resume: Some(resume),
    };
    let result = run_controlled(kind, FlowOptions::default(), &chip, &same_budget, 1);
    assert!(
        same_budget.control.is_tripped(),
        "a resumed run keeps the cumulative step count"
    );
    assert_exhaustive(kind, &chip, &result);
}

#[test]
fn trips_add_no_strict_violations_and_empty_trips_are_strict_clean() {
    // The acceptance contract under `ocr verify --strict`: a trip's
    // committed wiring is a prefix of the uninterrupted run's, so its
    // strict report must be a subset of the full run's — interrupting
    // never *introduces* a violation. And a trip that committed nothing
    // (pre-cancelled) has no geometry at all, so it is strict-clean
    // outright, for every flow.
    let chip = test_chip();
    for kind in FlowKind::ALL {
        let control = RunControl::new();
        control.cancel();
        let session = RunSession::with_control(control);
        let result = run_controlled(kind, FlowOptions::verified_strict(), &chip, &session, 1);
        let report = result.verify.as_ref().expect("verify requested");
        assert!(
            report.is_clean(),
            "{kind}: a geometry-free trip must pass strict verify: {report}"
        );
    }

    let kind = FlowKind::OverCell;
    let full = kind
        .build_with(FlowOptions::verified_strict())
        .run(&chip.layout, &chip.placement)
        .expect("flow");
    let full_strict: Vec<String> = full
        .verify
        .expect("verify requested")
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect();
    for budget in [2u64, 6, 14] {
        let session = RunSession::with_control(RunControl::new().with_step_budget(budget));
        let result = run_controlled(kind, FlowOptions::verified_strict(), &chip, &session, 1);
        let report = result.verify.as_ref().expect("verify requested");
        for v in &report.violations {
            assert!(
                full_strict.contains(&v.to_string()),
                "budget {budget}: the trip introduced a strict violation \
                 the uninterrupted run does not have: {v}"
            );
        }
    }
}
