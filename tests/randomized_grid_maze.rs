//! Randomized tests on the routing grid and maze router, driven by the
//! in-tree deterministic PRNG (fixed seeds, reproducible failures).

use overcell_router::gen::rng::Rng;
use overcell_router::geom::{Dir, Interval, Point, Rect};
use overcell_router::grid::{CellState, GridModel, TrackSet};
use overcell_router::maze::{find_soft_path, route_maze, MazeOptions};
use std::collections::BTreeSet;

const CASES: usize = 64;

fn grid(n: i64) -> GridModel {
    GridModel::new(
        Rect::new(0, 0, n, n),
        TrackSet::from_pitch(Interval::new(0, n), 10),
        TrackSet::from_pitch(Interval::new(0, n), 10),
    )
}

#[test]
fn occupy_then_query_is_consistent() {
    let mut rng = Rng::seed_from_u64(0x6101);
    for _ in 0..CASES {
        let track = rng.gen_range(0usize..11);
        let lo = rng.gen_range(0usize..11);
        let hi = rng.gen_range(0usize..11);
        let net = rng.gen_range(1u32..50);
        let mut g = grid(100);
        g.occupy_run(Dir::Horizontal, track, lo, hi, net);
        let (a, b) = (lo.min(hi), lo.max(hi));
        for k in 0..11 {
            let expect = if (a..=b).contains(&k) {
                CellState::Used(net)
            } else {
                CellState::Free
            };
            assert_eq!(g.state(Dir::Horizontal, k, track), expect);
            assert_eq!(g.state(Dir::Vertical, k, track), CellState::Free);
        }
        // The owner may re-run; everyone else is blocked on that stretch.
        assert!(g.run_is_free(Dir::Horizontal, track, a, b, net));
        assert!(!g.run_is_free(Dir::Horizontal, track, a, b, net + 1));
    }
}

#[test]
fn trackset_nearest_is_truly_nearest() {
    let mut rng = Rng::seed_from_u64(0x6102);
    for _ in 0..CASES {
        let count = rng.gen_range(1usize..20);
        let offsets: BTreeSet<i64> = (0..count).map(|_| rng.gen_range(0i64..200)).collect();
        let q = rng.gen_range(-50i64..250);
        let ts = TrackSet::from_offsets(offsets.iter().copied().collect());
        let k = ts.nearest(q).expect("non-empty");
        let best = ts
            .offsets()
            .iter()
            .map(|&o| (o - q).abs())
            .min()
            .expect("non-empty");
        assert_eq!((ts.offset(k) - q).abs(), best);
    }
}

#[test]
fn trackset_ensure_inserts_sorted_unique() {
    let mut rng = Rng::seed_from_u64(0x6103);
    for _ in 0..CASES {
        let count = rng.gen_range(0usize..15);
        let offsets: Vec<i64> = (0..count).map(|_| rng.gen_range(0i64..100)).collect();
        let extra = rng.gen_range(0i64..100);
        let mut ts = TrackSet::from_offsets(offsets);
        let before = ts.len();
        let k = ts.ensure(extra);
        assert_eq!(ts.offset(k), extra);
        assert!(ts.len() == before || ts.len() == before + 1);
        let o = ts.offsets();
        assert!(o.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
        // Idempotent.
        assert_eq!(ts.ensure(extra), k);
    }
}

fn random_grid_pair(rng: &mut Rng) -> (Point, Point) {
    loop {
        let a = Point::new(rng.gen_range(0i64..11) * 10, rng.gen_range(0i64..11) * 10);
        let b = Point::new(rng.gen_range(0i64..11) * 10, rng.gen_range(0i64..11) * 10);
        if a != b {
            return (a, b);
        }
    }
}

#[test]
fn maze_path_length_at_least_manhattan() {
    let mut rng = Rng::seed_from_u64(0x6104);
    for _ in 0..CASES {
        let (a, b) = random_grid_pair(&mut rng);
        let mut g = grid(100);
        let p = route_maze(&mut g, 1, a, b, MazeOptions::default()).expect("empty grid routes");
        let direct = overcell_router::geom::manhattan(a, b);
        assert!(p.route.wire_length() >= direct);
        // On an empty grid the wave finds a shortest path exactly.
        assert_eq!(p.route.wire_length(), direct);
        // Monotone path: at most one corner needed.
        assert!(p.route.vias.len() <= 1);
    }
}

#[test]
fn maze_marks_exactly_its_path() {
    let mut rng = Rng::seed_from_u64(0x6105);
    for _ in 0..CASES {
        let (a, b) = random_grid_pair(&mut rng);
        let mut g = grid(100);
        let p = route_maze(&mut g, 9, a, b, MazeOptions::default()).expect("routes");
        let mut used = 0usize;
        for j in 0..g.nh() {
            for i in 0..g.nv() {
                for d in Dir::BOTH {
                    if matches!(g.state(d, i, j), CellState::Used(9)) {
                        used += 1;
                    }
                }
            }
        }
        assert_eq!(used, p.nodes.len());
    }
}

#[test]
fn soft_path_cost_never_below_hard_path_cost() {
    let mut rng = Rng::seed_from_u64(0x6106);
    for _ in 0..CASES {
        let (a, b) = random_grid_pair(&mut rng);
        let track = rng.gen_range(0usize..11);
        let mut g = grid(100);
        // Another net's wire crosses the middle.
        g.occupy_run(Dir::Horizontal, track, 0, 10, 77);
        let hard = route_maze(&mut g.clone(), 1, a, b, MazeOptions::default());
        let soft = find_soft_path(&g, 1, a, b, MazeOptions::default(), 1000);
        if let (Ok(h), Ok(s)) = (hard, soft) {
            // The soft optimum can only be ≤ hard cost (it has more
            // options), and with zero blockers they coincide.
            assert!(s.cost <= h.cost);
            if s.blockers.is_empty() {
                assert_eq!(s.cost, h.cost);
            }
        }
    }
}

#[test]
fn block_rect_matches_crossing_semantics() {
    let mut rng = Rng::seed_from_u64(0x6107);
    for _ in 0..CASES {
        let x0 = rng.gen_range(0i64..80);
        let y0 = rng.gen_range(0i64..80);
        let w = rng.gen_range(1i64..20);
        let h = rng.gen_range(1i64..20);
        let mut g = grid(100);
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        g.block_rect(&r, Dir::Horizontal);
        // Blocked ⇔ the row crosses the interior AND (the cell is
        // strictly inside, or one of its adjacent along-row segments
        // would cross the interior).
        let crosses = |a: i64, b: i64| a.min(b) < r.x1() && a.max(b) > r.x0();
        for j in 0..g.nh() {
            for i in 0..g.nv() {
                let p = g.point(i, j);
                let row_inside = p.y > r.y0() && p.y < r.y1();
                let inside = p.x > r.x0() && p.x < r.x1();
                let left = i > 0 && crosses(g.point(i - 1, j).x, p.x);
                let right = i + 1 < g.nv() && crosses(p.x, g.point(i + 1, j).x);
                let expect = row_inside && (inside || left || right);
                let blocked = g.state(Dir::Horizontal, i, j) == CellState::Blocked;
                assert_eq!(blocked, expect, "at {}", p);
                // The vertical plane is untouched either way.
                assert_eq!(g.state(Dir::Vertical, i, j), CellState::Free);
            }
        }
    }
}

/// The reason for the crossing semantics: no maze route may ever
/// cross a blocked rectangle's interior, even when the rectangle is
/// thinner than the track pitch.
#[test]
fn maze_never_crosses_blocked_interior() {
    let mut rng = Rng::seed_from_u64(0x6108);
    for _ in 0..CASES {
        let x0 = rng.gen_range(5i64..80);
        let y0 = rng.gen_range(5i64..80);
        let w = rng.gen_range(1i64..20);
        let h = rng.gen_range(1i64..20);
        let mut g = grid(100);
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        g.block_rect(&r, Dir::Horizontal);
        g.block_rect(&r, Dir::Vertical);
        if let Ok(p) = route_maze(
            &mut g,
            1,
            Point::new(0, 0),
            Point::new(100, 100),
            MazeOptions::default(),
        ) {
            for seg in &p.route.segs {
                let (a, b) = (seg.a(), seg.b());
                let crosses = if a.y == b.y {
                    a.y > r.y0() && a.y < r.y1() && a.x.min(b.x) < r.x1() && a.x.max(b.x) > r.x0()
                } else {
                    a.x > r.x0() && a.x < r.x1() && a.y.min(b.y) < r.y1() && a.y.max(b.y) > r.y0()
                };
                assert!(!crosses, "segment {}–{} crosses obstacle {}", a, b, r);
            }
        }
    }
}
