//! Round-trip tests: serialized chips must parse back identically and
//! route to identical results.

use overcell_router::core::OverCellFlow;
use overcell_router::gen::random::small_random;
use overcell_router::gen::suite;
use overcell_router::io::{parse_chip, parse_routes, write_chip, write_routes};

#[test]
fn generated_chips_round_trip_exactly() {
    for chip in [small_random(6, 2, 3, 10, 11), suite::ami33_like()] {
        let text = write_chip(&chip.layout, &chip.placement);
        let (layout, placement) = parse_chip(&text).expect("parses");
        assert_eq!(layout.cells.len(), chip.layout.cells.len());
        assert_eq!(layout.nets.len(), chip.layout.nets.len());
        assert_eq!(layout.pins.len(), chip.layout.pins.len());
        assert_eq!(layout.die, chip.layout.die);
        assert_eq!(placement.rows.len(), chip.placement.rows.len());
        // Second serialization is byte-identical (canonical form).
        assert_eq!(write_chip(&layout, &placement), text);
    }
}

#[test]
fn routing_a_parsed_chip_matches_routing_the_original() {
    let chip = small_random(6, 2, 3, 10, 5);
    let text = write_chip(&chip.layout, &chip.placement);
    let (layout, placement) = parse_chip(&text).expect("parses");

    let original = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("routes original");
    let reloaded = OverCellFlow::default()
        .run(&layout, &placement)
        .expect("routes reloaded");
    assert_eq!(original.metrics, reloaded.metrics);
}

#[test]
fn routed_geometry_round_trips() {
    let chip = small_random(6, 2, 3, 10, 7);
    let res = OverCellFlow::default()
        .run(&chip.layout, &chip.placement)
        .expect("routes");
    let text = write_routes(&res.layout, &res.design);
    let back = parse_routes(&res.layout, &text).expect("parses");
    assert_eq!(back.routed_count(), res.design.routed_count());
    for (net, route) in res.design.iter_routes() {
        let r2 = back.route(net).expect("route present");
        assert_eq!(r2.wire_length(), route.wire_length(), "net {net}");
        assert_eq!(r2.via_cuts(), route.via_cuts(), "net {net}");
    }
    assert_eq!(write_routes(&res.layout, &back), text);
}
